package core

import (
	"fmt"

	"meecc/internal/enclave"
	"meecc/internal/fault"
	"meecc/internal/platform"
	"meecc/internal/sim"
)

// ChannelConfig parameterizes one covert-channel run (Algorithm 2).
type ChannelConfig struct {
	Options

	// Window is Tsync, the per-bit timing window in cycles (the paper
	// sweeps 5000..30000; 15000 is its sweet spot).
	Window sim.Cycles
	// Bits is the bit sequence the trojan transmits (values 0/1).
	Bits []byte
	// Index512 is the agreed index: which 512-byte unit within a 4 KB page
	// both sides use (§5.3 — "any arbitrary index can be used").
	Index512 int
	// ProbePhase is the fraction of the window at which the spy probes;
	// late enough that the trojan's ~9000-cycle eviction has finished.
	ProbePhase float64
	// TwoPhaseEviction selects the paper's forward+backward eviction; false
	// degrades to a single forward pass (the ablation of §5.3's design
	// choice under approximate-LRU replacement).
	TwoPhaseEviction bool
	// Repetition transmits each payload bit this many consecutive windows
	// and majority-decodes on the spy side — a simple reliability layer on
	// top of the paper's raw channel ("without any error handling").
	// 0 or 1 means raw.
	Repetition int
	// Noise starts a background environment at transmission start.
	Noise NoiseKind
	// Fault, when non-nil, arms a deterministic chaos campaign on the run
	// (see internal/fault). The schedule derives from Fault.Seed alone;
	// Start/End default to the transmission interval when both are zero.
	Fault *fault.Config

	// Core placement (defaults: trojan 0, spy 2, noise 1 — distinct
	// physical cores, as in the paper's threat model).
	TrojanCore, SpyCore, NoiseCore int

	// Setup schedule (cycle budgets; defaults applied by RunChannel).
	CalBudget    sim.Cycles // both sides calibrate thresholds
	SetupBudget  sim.Cycles // trojan runs Algorithm 1
	SearchBudget sim.Cycles // spy locates its monitor address

	// onPlatform, when set (by in-package studies), is invoked after the
	// attack actors are spawned with the platform and the transmission
	// interval — e.g. to attach a detector.
	onPlatform func(plat *platform.Platform, t0, tEnd sim.Cycles)
}

// DefaultChannelConfig returns the paper's operating point: 15000-cycle
// window, alternating bits, two-phase eviction.
func DefaultChannelConfig(seed uint64) ChannelConfig {
	return ChannelConfig{
		Options:          DefaultOptions(seed),
		Window:           15000,
		Bits:             AlternatingBits(30),
		ProbePhase:       0.65,
		TwoPhaseEviction: true,
		TrojanCore:       0,
		SpyCore:          2,
		NoiseCore:        1,
	}
}

func (c *ChannelConfig) applyDefaults() {
	if c.Window <= 0 {
		c.Window = 15000
	}
	if c.ProbePhase <= 0 || c.ProbePhase >= 1 {
		c.ProbePhase = 0.65
	}
	// Normalize core placement: the threat model puts trojan, spy, and
	// noise on three distinct physical cores. Resolve collisions
	// deterministically — spy hops two cores away, then noise takes the
	// lowest core distinct from both.
	if c.SpyCore == c.TrojanCore {
		c.SpyCore = (c.TrojanCore + 2) % 4
	}
	if c.NoiseCore == c.TrojanCore || c.NoiseCore == c.SpyCore {
		for core := 0; core < 4; core++ {
			if core != c.TrojanCore && core != c.SpyCore {
				c.NoiseCore = core
				break
			}
		}
	}
	if c.CalBudget <= 0 {
		c.CalBudget = 2_000_000
	}
	if c.SetupBudget <= 0 {
		c.SetupBudget = 60_000_000
	}
	if c.SearchBudget <= 0 {
		c.SearchBudget = 14_000_000
	}
}

// ChannelResult reports one covert-channel run.
type ChannelResult struct {
	Sent     []byte
	Received []byte
	// ProbeTimes are the spy's measured per-window probe latencies — the
	// traces plotted in Figures 6(b) and 8.
	ProbeTimes []sim.Cycles
	// ErrorBits marks windows decoded incorrectly.
	ErrorBits []int

	SpyThreshold    sim.Cycles
	EvictionSetSize int
	MonitorScore    int
	BitErrors       int
	ErrorRate       float64
	KBps            float64
	SetupCycles     sim.Cycles
	// Footprint is what a hardware-counter detector would see during the
	// transmission phase (setup excluded) — see the stealth study.
	Footprint *AttackFootprint
	// Faults is the applied-fault log when a chaos campaign was armed.
	Faults []fault.Injected
}

// AlternatingBits returns '0101...' of length n (Figure 6's sequence).
func AlternatingBits(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i % 2)
	}
	return out
}

// PatternBits repeats the given pattern string of '0'/'1' to n bits
// (Figure 8 uses "100" repeated to 128 bits).
func PatternBits(pattern string, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = pattern[i%len(pattern)] - '0'
	}
	return out
}

// RandomBits returns n seeded random bits (used by the Figure 7 sweep).
func RandomBits(seed uint64, n int) []byte {
	s := seed*0x9e3779b97f4a7c15 + 1
	out := make([]byte, n)
	for i := range out {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		out[i] = byte(s >> 63)
	}
	return out
}

// Enclave layout shared by RunChannel and RunResilient: a calibration pool
// plus the candidate pages Algorithm 1 (trojan) and monitor discovery (spy)
// work over.
const (
	calPages         = 8
	trojanCandidates = 96
	spyCandidates    = 24
)

// channelSession carries the state shared between the warm phase
// (calibration, Algorithm 1 eviction-set construction, monitor discovery)
// and the transmit phase (Algorithm 2) of one covert-channel run.
// RunChannel drives both phases back to back in one pair of actors on a
// fresh platform; WarmChannel runs only the warm phase and snapshots the
// platform so many transmissions can fork from the same warm state.
type channelSession struct {
	cfg     ChannelConfig // defaults applied; Bits expanded by repetition
	logical []byte        // pre-expansion payload
	rep     int

	// Agreed schedule (both sides know these offsets out of band). The
	// warm phase ends strictly before t0 = tSearchEnd regardless of Window
	// or payload, which is what makes warm state shareable across them.
	tCalEnd, tSetupEnd, t0, tEnd sim.Cycles

	trojanProc, spyProc   *platform.Process
	trojanCands, spyCands []enclave.VAddr

	// Live working sets, filled in by the actors once discovered; fault
	// injection reads them (engine-serialized) to aim paging events at the
	// pages that actually carry the channel.
	liveEvictionSet, liveMonitor []enclave.VAddr

	// Warm products, consumed by the transmit phase.
	spyThreshold sim.Cycles
	evSet        []enclave.VAddr
	monitor      enclave.VAddr

	res               *ChannelResult
	trojanErr, spyErr error
}

// prepareChannel validates cfg, applies defaults, expands repetition
// coding, and computes the session schedule.
func prepareChannel(cfg ChannelConfig) (*channelSession, error) {
	cfg.applyDefaults()
	for _, b := range cfg.Bits {
		if b > 1 {
			return nil, fmt.Errorf("core: bits must be 0/1, got %d", b)
		}
	}
	s := &channelSession{cfg: cfg, logical: cfg.Bits, rep: cfg.Repetition}
	if s.rep < 1 {
		s.rep = 1
	}
	if s.rep > 1 {
		expanded := make([]byte, 0, len(s.logical)*s.rep)
		for _, b := range s.logical {
			for r := 0; r < s.rep; r++ {
				expanded = append(expanded, b)
			}
		}
		s.cfg.Bits = expanded
	}
	s.tCalEnd = s.cfg.CalBudget
	s.tSetupEnd = s.tCalEnd + s.cfg.SetupBudget
	s.t0 = s.tSetupEnd + s.cfg.SearchBudget
	s.tEnd = s.t0 + sim.Cycles(len(s.cfg.Bits))*s.cfg.Window
	s.res = &ChannelResult{Sent: s.cfg.Bits}
	return s, nil
}

// createProcs builds the trojan and spy processes and their enclaves on
// plat, in a fixed order: process index 0 is always the trojan, index 1 the
// spy. Forked sessions re-find their processes by these indices.
func (s *channelSession) createProcs(plat *platform.Platform) error {
	s.trojanProc = plat.NewProcess("trojan")
	s.spyProc = plat.NewProcess("spy")
	if _, err := s.trojanProc.CreateEnclave(calPages + trojanCandidates); err != nil {
		return err
	}
	if _, err := s.spyProc.CreateEnclave(calPages + spyCandidates); err != nil {
		return err
	}
	s.trojanCands = pageAddrs(s.trojanProc.Enclave().Base+enclave.VAddr(calPages*enclave.PageBytes), trojanCandidates, s.cfg.Index512)
	s.spyCands = pageAddrs(s.spyProc.Enclave().Base+enclave.VAddr(calPages*enclave.PageBytes), spyCandidates, s.cfg.Index512)
	return nil
}

// evict runs the paper's forward(+backward) pass over the eviction set.
func (s *channelSession) evict(th *platform.Thread) {
	for i := 0; i < len(s.evSet); i++ { // forward phase
		th.Access(s.evSet[i])
		th.Flush(s.evSet[i])
	}
	th.Mfence()
	if s.cfg.TwoPhaseEviction {
		for i := len(s.evSet) - 1; i >= 0; i-- { // backward phase
			th.Access(s.evSet[i])
			th.Flush(s.evSet[i])
		}
		th.Mfence()
	}
}

// trojanWarm is the sender's pre-transmission work: threshold calibration,
// Algorithm 1, and the search-phase burst loop the spy locks onto. It
// reports whether the phase succeeded; on failure s.trojanErr is set.
// It is split into trojanSetup (everything through the end of the setup
// budget — the part the epoch kernel leaves on the general engine) and
// trojanBurst (the scripted search-phase loop the kernel compiles).
func (s *channelSession) trojanWarm(th *platform.Thread) bool {
	if !s.trojanSetup(th) {
		return false
	}
	s.trojanBurst(th)
	return true
}

// trojanSetup calibrates, runs Algorithm 1, and spins out the setup budget.
func (s *channelSession) trojanSetup(th *platform.Thread) bool {
	th.EnterEnclave()
	base := s.trojanProc.Enclave().Base
	threshold := calibrateThreshold(th, pageAddrs(base, calPages, s.cfg.Index512))
	th.SpinUntil(s.tCalEnd)

	a1, err := FindEvictionSet(th, s.trojanCands, threshold)
	if err != nil {
		s.trojanErr = err
		return false
	}
	s.evSet = a1.EvictionSet
	s.liveEvictionSet = s.evSet
	s.res.EvictionSetSize = len(s.evSet)
	s.res.SetupCycles = th.Now()
	if th.Now() > s.tSetupEnd {
		s.trojanErr = fmt.Errorf("core: trojan setup overran its budget (%d > %d)", th.Now(), s.tSetupEnd)
		return false
	}
	th.SpinUntil(s.tSetupEnd)
	return true
}

// trojanBurst is the search phase: burst continuously so the spy can find
// which of its addresses conflicts with the eviction set.
func (s *channelSession) trojanBurst(th *platform.Thread) {
	for th.Now() < s.t0-20_000 {
		s.evict(th)
		th.Spin(1000)
	}
}

// trojanTransmit is Algorithm 2, the trojan's operation.
func (s *channelSession) trojanTransmit(th *platform.Thread) {
	for i, bit := range s.cfg.Bits {
		waitUntilTimer(th, s.t0+sim.Cycles(i)*s.cfg.Window)
		if bit == 1 {
			s.evict(th)
		}
		// '0': busy loop until the next window (the waitUntilTimer at
		// the top of the loop).
	}
}

// spySamples is how many times monitor discovery probes each candidate.
const spySamples = 10

// spyWarm is the receiver's pre-transmission work: threshold calibration
// and monitor-address discovery against the trojan's search bursts. Like
// trojanWarm it is split at the setup-budget boundary: spySetup stays on
// the general engine, spyDiscover is what the epoch kernel compiles.
func (s *channelSession) spyWarm(th *platform.Thread) bool {
	s.spySetup(th)
	return s.spyDiscover(th)
}

// spySetup calibrates the spy's threshold and spins out the setup budget.
func (s *channelSession) spySetup(th *platform.Thread) {
	th.EnterEnclave()
	base := s.spyProc.Enclave().Base
	// Calibrate in the second half of the calibration phase, staggered
	// against the trojan so the two measurement loops don't contend.
	th.SpinUntil(s.tCalEnd / 2)
	s.spyThreshold = calibrateThreshold(th, pageAddrs(base, calPages, s.cfg.Index512))
	s.res.SpyThreshold = s.spyThreshold
	th.SpinUntil(s.tSetupEnd)
}

// spyDiscover is monitor discovery: sample each candidate while the trojan
// bursts; the address the bursts keep evicting is the monitor.
func (s *channelSession) spyDiscover(th *platform.Thread) bool {
	bestScore, monitor := -1, enclave.VAddr(0)
	for _, cand := range s.spyCands {
		score := 0
		for i := 0; i < spySamples; i++ {
			th.Access(cand)
			th.Flush(cand)
			th.SpinUntil(th.Now() + 40_000) // several burst periods
			if timedAccess(th, cand) > s.spyThreshold {
				score++
			}
			th.Flush(cand)
		}
		if score > bestScore {
			bestScore, monitor = score, cand
		}
	}
	return s.finishDiscovery(th.Now(), bestScore, monitor)
}

// finishDiscovery applies the discovery acceptance checks shared by the
// general engine and the epoch kernel.
func (s *channelSession) finishDiscovery(now sim.Cycles, bestScore int, monitor enclave.VAddr) bool {
	s.res.MonitorScore = bestScore
	if bestScore < spySamples*6/10 {
		s.spyErr = fmt.Errorf("core: monitor discovery failed (best score %d/%d)", bestScore, spySamples)
		return false
	}
	if now > s.t0 {
		s.spyErr = fmt.Errorf("core: spy search overran its budget (%d > %d)", now, s.t0)
		return false
	}
	s.monitor = monitor
	s.liveMonitor = []enclave.VAddr{monitor}
	return true
}

// spyTransmit is Algorithm 2, the spy's operation: prime just before
// transmission starts (after the trojan's last search-phase burst), then
// decode each window. The probe itself re-primes after a miss.
func (s *channelSession) spyTransmit(th *platform.Thread) {
	waitUntilTimer(th, s.t0-5000)
	th.Access(s.monitor)
	th.Flush(s.monitor)
	s.res.Received = make([]byte, len(s.cfg.Bits))
	s.res.ProbeTimes = make([]sim.Cycles, len(s.cfg.Bits))
	probeOffset := sim.Cycles(float64(s.cfg.Window) * s.cfg.ProbePhase)
	for i := range s.cfg.Bits {
		waitUntilTimer(th, s.t0+sim.Cycles(i)*s.cfg.Window+probeOffset)
		t := timedAccess(th, s.monitor)
		th.Flush(s.monitor)
		s.res.ProbeTimes[i] = t
		if t > s.spyThreshold {
			s.res.Received[i] = 1
		}
	}
}

// spawnStatsReset arms the detector-statistics snapshot at transmission
// start: detector-visible counters cover the transmission phase only.
func (s *channelSession) spawnStatsReset(plat *platform.Platform) {
	plat.Engine().SpawnAt("stats-reset", s.t0-1, func(p *sim.Proc) {
		plat.Caches().LLC().ResetStats()
		plat.MEE().ResetStats()
	})
}

// finish turns the raw transmission record into the ChannelResult:
// footprint capture, repetition decoding, error statistics, and optional
// observability export.
func (s *channelSession) finish(plat *platform.Platform, injector *fault.Injector) (*ChannelResult, error) {
	res := s.res
	res.Footprint = captureFootprint(plat)
	if injector != nil {
		res.Faults = injector.Log()
	}
	if s.trojanErr != nil {
		return res, s.trojanErr
	}
	if s.spyErr != nil {
		return res, s.spyErr
	}
	if res.Received == nil {
		return res, fmt.Errorf("core: spy never completed transmission")
	}

	if s.rep > 1 {
		// Majority-decode each repetition group back to logical bits.
		decoded := make([]byte, len(s.logical))
		for i := range s.logical {
			ones := 0
			for r := 0; r < s.rep; r++ {
				ones += int(res.Received[i*s.rep+r])
			}
			if ones*2 > s.rep {
				decoded[i] = 1
			}
		}
		res.Sent = s.logical
		res.Received = decoded
	}
	for i := range res.Sent {
		if res.Received[i] != res.Sent[i] {
			res.BitErrors++
			res.ErrorBits = append(res.ErrorBits, i)
		}
	}
	res.ErrorRate = float64(res.BitErrors) / float64(len(res.Sent))
	res.KBps = plat.WindowKBps(s.cfg.Window) / float64(s.rep)
	if o := s.cfg.Obs; o != nil {
		o.Counter("channel.windows").Add(uint64(len(res.ProbeTimes)))
		o.Counter("channel.bits_sent").Add(uint64(len(res.Sent)))
		o.Counter("channel.bits_decoded").Add(uint64(len(res.Received)))
		o.Counter("channel.bit_errors").Add(uint64(res.BitErrors))
		for _, pos := range res.ErrorBits {
			o.Histogram("channel.error_position").Observe(int64(pos))
		}
		if tr := o.Tracer(); tr != nil {
			// Reconstruct the transmission timeline: per-window probe
			// latencies as instants on a "channel" track, and the cumulative
			// bit-error count as a counter track aligned to logical bits.
			track := tr.Track("channel")
			nProbe := tr.Name("channel.probe")
			nErrs := tr.Name("channel.errors")
			probeOffset := sim.Cycles(float64(s.cfg.Window) * s.cfg.ProbePhase)
			for i, pt := range res.ProbeTimes {
				tr.Instant(track, nProbe, int64(s.t0+sim.Cycles(i)*s.cfg.Window+probeOffset), int64(pt))
			}
			errSoFar, ei := 0, 0
			for i := range res.Sent {
				if ei < len(res.ErrorBits) && res.ErrorBits[ei] == i {
					errSoFar++
					ei++
				}
				tr.Count(nErrs, int64(s.t0+sim.Cycles((i+1)*s.rep)*s.cfg.Window), int64(errSoFar))
			}
		}
	}
	return res, nil
}

// RunChannel executes one full covert-channel session: threshold
// calibration on both sides, trojan eviction-set construction (Algorithm 1),
// spy monitor-address discovery, then the Algorithm 2 transmission of
// cfg.Bits. It returns the decoded sequence and channel statistics.
//
// Each side runs warm and transmit phases back to back in a single actor,
// so the operation stream is identical to the historical single-closure
// implementation. WarmChannel/ChannelWarmState.Run split the same phases
// across a platform fork instead.
func RunChannel(cfg ChannelConfig) (*ChannelResult, error) {
	s, err := prepareChannel(cfg)
	if err != nil {
		return nil, err
	}
	if s.epochEligible() {
		return s.runEpoch()
	}
	cfg = s.cfg
	plat := cfg.boot()
	defer plat.Close()
	if err := s.createProcs(plat); err != nil {
		return nil, err
	}

	trojanTh := plat.SpawnThread("trojan", s.trojanProc, cfg.TrojanCore, func(th *platform.Thread) {
		if s.trojanWarm(th) {
			s.trojanTransmit(th)
		}
	})
	spyTh := plat.SpawnThread("spy", s.spyProc, cfg.SpyCore, func(th *platform.Thread) {
		if s.spyWarm(th) {
			s.spyTransmit(th)
		}
	})

	if err := spawnNoise(plat, cfg.Noise, cfg.NoiseCore, s.t0); err != nil {
		return nil, err
	}
	var injector *fault.Injector
	if cfg.Fault != nil {
		fc := *cfg.Fault
		if fc.Start == 0 && fc.End == 0 {
			fc.Start, fc.End = s.t0, s.tEnd
		}
		injector = fault.NewPlan(fc).Attach(plat, fault.Targets{
			Trojan: trojanTh, Spy: spyTh,
			TrojanProc: s.trojanProc, SpyProc: s.spyProc,
			TrojanPages: s.trojanCands, SpyPages: s.spyCands,
			TrojanLive: func() []enclave.VAddr { return s.liveEvictionSet },
			SpyLive:    func() []enclave.VAddr { return s.liveMonitor },
			TrojanHome: cfg.TrojanCore, SpyHome: cfg.SpyCore,
			StormCore: cfg.NoiseCore,
		})
	}
	// Snapshot detector-visible statistics over the transmission phase.
	s.spawnStatsReset(plat)
	if cfg.onPlatform != nil {
		cfg.onPlatform(plat, s.t0, s.tEnd)
	}

	plat.Run(s.tEnd + cfg.Window)
	return s.finish(plat, injector)
}
