package core

import (
	"testing"

	"meecc/internal/enclave"
	"meecc/internal/mee"
	"meecc/internal/platform"
)

func TestMeasureCapacityInfers64KB(t *testing.T) {
	res, err := MeasureCapacity(DefaultOptions(11), nil, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.CapacityBytes != 64<<10 {
		t.Fatalf("inferred capacity %d, want 65536", res.CapacityBytes)
	}
	// Monotone-ish shape: probability at 64 must be 1.0 and dominate the
	// small sizes (Figure 4).
	last := res.Points[len(res.Points)-1]
	if last.Candidates != 64 || last.Probability < 0.995 {
		t.Fatalf("eviction probability at 64 candidates = %.2f, want 1.0", last.Probability)
	}
	for _, p := range res.Points[:len(res.Points)-1] {
		if p.Probability > 0.5 {
			t.Errorf("eviction probability %.2f at %d candidates unexpectedly high", p.Probability, p.Candidates)
		}
	}
}

func TestCapacityChunkedEPCIsNoisier(t *testing.T) {
	opts := DefaultOptions(12)
	opts.EPCMode = enclave.AllocChunked
	res, err := MeasureCapacity(opts, []int{64}, 20)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Points[0].Probability
	if p < 0.3 {
		t.Errorf("chunked-EPC eviction probability at 64 = %.2f, expected substantial", p)
	}
	// With fragmented physical pages the guarantee disappears; strictly
	// 1.0 would indicate the fragmentation model is not engaged.
	if p > 0.999 {
		t.Log("chunked allocation produced fully deterministic eviction; acceptable but unusual")
	}
}

func TestReverseEngineerRecoversPaperOrganization(t *testing.T) {
	org, capRes, a1, err := ReverseEngineer(DefaultOptions(13), 10)
	if err != nil {
		t.Fatal(err)
	}
	if org.CapacityBytes != 64<<10 {
		t.Errorf("capacity %d, want 65536", org.CapacityBytes)
	}
	if org.Ways != 8 {
		t.Errorf("associativity %d, want 8", org.Ways)
	}
	if org.Sets != 128 {
		t.Errorf("sets %d, want 128", org.Sets)
	}
	if org.LineBytes != 64 {
		t.Errorf("line size %d, want 64", org.LineBytes)
	}
	if capRes == nil || a1 == nil {
		t.Fatal("missing sub-results")
	}
}

func TestAlgorithm1EvictionSetSharesOneMEESet(t *testing.T) {
	// White-box invariant: every address Algorithm 1 returns must map its
	// versions line to the same MEE cache set.
	opts := DefaultOptions(17)
	plat := opts.boot()
	defer plat.Close()
	pr := plat.NewProcess("a1")
	if _, err := pr.CreateEnclave(8 + 96); err != nil {
		t.Fatal(err)
	}
	base := pr.Enclave().Base
	var res *Algorithm1Result
	var a1Err error
	plat.SpawnThread("a1", pr, 0, func(th *platform.Thread) {
		th.EnterEnclave()
		threshold := calibrateThreshold(th, pageAddrs(base, 8, 0))
		cands := pageAddrs(base+enclave.VAddr(8*enclave.PageBytes), 96, 0)
		res, a1Err = FindEvictionSet(th, cands, threshold)
	})
	plat.Run(-1)
	if a1Err != nil {
		t.Fatal(a1Err)
	}
	if got := res.Associativity(); got != 8 {
		t.Fatalf("associativity %d, want 8", got)
	}
	meeEng := plat.MEE()
	wantSet := -1
	for _, va := range res.EvictionSet {
		pa, ok := pr.Translate(va)
		if !ok {
			t.Fatal("unmapped eviction-set address")
		}
		set := meeEng.CacheSetFor(meeEng.Geometry().VersionLineAddr(pa))
		if wantSet == -1 {
			wantSet = set
		} else if set != wantSet {
			t.Fatalf("eviction set spans MEE sets %d and %d", wantSet, set)
		}
	}
	if wantSet%2 != 1 {
		t.Fatalf("eviction set in even MEE set %d; versions data must live in odd sets", wantSet)
	}
	// The test address must also map to the same set.
	pa, _ := pr.Translate(res.Test)
	if set := meeEng.CacheSetFor(meeEng.Geometry().VersionLineAddr(pa)); set != wantSet {
		t.Fatalf("test address in set %d, eviction set in %d", set, wantSet)
	}
}

func TestCalibrateThresholdSeparatesModes(t *testing.T) {
	opts := DefaultOptions(19)
	plat := opts.boot()
	defer plat.Close()
	pr := plat.NewProcess("cal")
	if _, err := pr.CreateEnclave(8); err != nil {
		t.Fatal(err)
	}
	var threshold int64
	plat.SpawnThread("cal", pr, 0, func(th *platform.Thread) {
		th.EnterEnclave()
		threshold = int64(calibrateThreshold(th, pageAddrs(pr.Enclave().Base, 8, 0)))
	})
	plat.Run(-1)
	// Midpoint between ~480 (versions hit) and ~750 (L0 hit).
	if threshold < 550 || threshold > 720 {
		t.Fatalf("threshold %d outside the expected 550..720 band", threshold)
	}
}

func TestLatencyCharacterizationOrdering(t *testing.T) {
	res, err := CharacterizeLatency(DefaultOptions(14), 300)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for h := mee.HitVersions; h <= mee.HitRoot; h++ {
		hst := res.ByLevel[h]
		if hst.N() == 0 {
			t.Fatalf("no samples at level %v", h)
		}
		m := hst.Mean()
		if m <= prev {
			t.Fatalf("latency not monotone at %v: %.0f <= %.0f", h, m, prev)
		}
		prev = m
	}
	vh := res.MeanLatency(mee.HitVersions)
	if vh < 430 || vh > 580 {
		t.Errorf("versions-hit mean %.0f, want ~480", vh)
	}
	gap := res.MeanLatency(mee.HitL0) - vh
	if gap < 200 || gap > 350 {
		t.Errorf("versions->L0 gap %.0f, want ~270", gap)
	}
	// Stride-to-mode correspondence (§5.1): small strides mostly versions
	// hits, 4 KB stride mostly L1 hits.
	c64 := res.ByStride[64]
	if c64[mee.HitVersions] < c64[mee.HitL0] {
		t.Error("64 B stride not dominated by versions hits")
	}
	c4k := res.ByStride[4096]
	if c4k[mee.HitL1] < c4k[mee.HitVersions] {
		t.Error("4 KB stride not dominated by upper-level hits")
	}
}

func TestPrimeProbeBaselineIsWorseThanChannel(t *testing.T) {
	ppCfg := DefaultChannelConfig(5)
	ppCfg.Bits = AlternatingBits(64)
	pp, err := RunPrimeProbe(ppCfg)
	if err != nil {
		t.Fatal(err)
	}
	chCfg := DefaultChannelConfig(5)
	chCfg.Bits = AlternatingBits(64)
	ch, err := RunChannel(chCfg)
	if err != nil {
		t.Fatal(err)
	}
	if pp.ErrorRate <= ch.ErrorRate {
		t.Errorf("prime+probe error %.3f not worse than this work's %.3f", pp.ErrorRate, ch.ErrorRate)
	}
	// §5.2: probing the 8-way set costs >3500 cycles.
	for i, pt := range pp.ProbeTimes {
		if pt < 3500 {
			t.Fatalf("probe %d took %d cycles, paper says >3500", i, pt)
		}
	}
}

func TestNoiseStudyOrdering(t *testing.T) {
	runs := NoiseStudy(DefaultOptions(3), 15000, 128)
	if len(runs) != 4 {
		t.Fatalf("got %d runs", len(runs))
	}
	rates := map[NoiseKind]float64{}
	for _, r := range runs {
		if r.Err != nil {
			t.Fatalf("%v: %v", r.Kind, r.Err)
		}
		rates[r.Kind] = r.Result.ErrorRate
	}
	// Figure 8: plain memory noise has minimal impact; MEE noise hurts.
	if rates[NoiseMEE4K] <= rates[NoiseNone] {
		t.Errorf("MEE 4KB noise %.3f not worse than quiet %.3f", rates[NoiseMEE4K], rates[NoiseNone])
	}
	if rates[NoiseMEE512] <= rates[NoiseNone] {
		t.Errorf("MEE 512B noise %.3f not worse than quiet %.3f", rates[NoiseMEE512], rates[NoiseNone])
	}
	if rates[NoiseMemory] >= rates[NoiseMEE4K] {
		t.Errorf("memory noise %.3f should hurt less than MEE noise %.3f", rates[NoiseMemory], rates[NoiseMEE4K])
	}
}

func TestWindowSweepShape(t *testing.T) {
	pts := WindowSweep(DefaultOptions(1), nil, 128)
	if len(pts) != 7 {
		t.Fatalf("got %d points", len(pts))
	}
	byWindow := map[int64]SweepPoint{}
	for _, p := range pts {
		if p.Err != nil {
			t.Fatalf("window %d: %v", p.Window, p.Err)
		}
		byWindow[int64(p.Window)] = p
	}
	// Bit rate halves as window doubles; the 15000 window gives ~33 KBps.
	if k := byWindow[15000].KBps; k < 30 || k > 37 {
		t.Errorf("15000-cycle bit rate %.1f", k)
	}
	if byWindow[5000].KBps <= byWindow[30000].KBps {
		t.Error("bit rate not decreasing with window size")
	}
	// The error knee (§5.4): 7500 is far worse than 10000+.
	if byWindow[7500].ErrorRate < 2*byWindow[15000].ErrorRate {
		t.Errorf("no knee: err(7500)=%.3f err(15000)=%.3f", byWindow[7500].ErrorRate, byWindow[15000].ErrorRate)
	}
	if byWindow[15000].ErrorRate > 0.08 {
		t.Errorf("err(15000)=%.3f, paper: 1.7%%", byWindow[15000].ErrorRate)
	}
}

func TestMitigationStudy(t *testing.T) {
	results := MitigationStudy(DefaultOptions(9), 15000, 128)
	byName := map[string]MitigationResult{}
	for _, m := range results {
		byName[m.Name] = m
	}
	if byName["baseline"].Defeated() {
		t.Errorf("baseline defeated: %+v", byName["baseline"])
	}
	if !byName["random-replacement"].Defeated() {
		t.Errorf("random replacement did not defeat the channel: %+v", byName["random-replacement"])
	}
	if byName["noise-20pct"].ErrorRate <= byName["baseline"].ErrorRate {
		t.Errorf("20%% eviction injection (%.3f) not worse than baseline (%.3f)",
			byName["noise-20pct"].ErrorRate, byName["baseline"].ErrorRate)
	}
}
