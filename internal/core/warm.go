package core

import (
	"fmt"

	"meecc/internal/enclave"
	"meecc/internal/platform"
	"meecc/internal/sim"
)

// ChannelWarmState is the reusable product of WarmChannel: a platform
// snapshot taken after threshold calibration, eviction-set construction
// (Algorithm 1), and monitor discovery have completed — a point that does
// not depend on the payload, the timing window, or the probe phase. Run
// forks the snapshot per transmission, so a sweep over windows or payloads
// pays the ~76M-cycle warm-up once instead of once per cell.
//
// A warm state is tied to the exact machine and schedule it was produced
// under; Run rejects configs that would have changed the warm phase.
type ChannelWarmState struct {
	warmCfg ChannelConfig // defaults applied; Bits/Window vary per Run

	snap                  *platform.Snapshot
	trojanSt, spySt       platform.ThreadState
	trojanClock, spyClock sim.Cycles

	evSet        []enclave.VAddr
	monitor      enclave.VAddr
	spyThreshold sim.Cycles

	evictionSetSize int
	monitorScore    int
	setupCycles     sim.Cycles
}

// warmRestriction reports why cfg cannot use the warm-fork path. Noise and
// fault actors, study callbacks, and observers all attach to the concrete
// platform during or before the warm phase, so configs using them must run
// fresh via RunChannel.
func warmRestriction(cfg ChannelConfig) error {
	switch {
	case cfg.Noise != NoiseNone:
		return fmt.Errorf("core: warm forking does not support background noise (%s)", cfg.Noise)
	case cfg.Fault != nil:
		return fmt.Errorf("core: warm forking does not support fault injection")
	case cfg.onPlatform != nil:
		return fmt.Errorf("core: warm forking does not support onPlatform callbacks")
	case cfg.Obs != nil:
		return fmt.Errorf("core: warm forking does not support observability")
	}
	return nil
}

// WarmChannel runs the warm phase of a channel session — calibration on
// both sides, Algorithm 1, monitor discovery — to completion and snapshots
// the platform. cfg.Bits, Window, ProbePhase, and Repetition are ignored:
// they only shape the transmit phase and are taken from the config passed
// to each Run.
func WarmChannel(cfg ChannelConfig) (*ChannelWarmState, error) {
	cfg.applyDefaults()
	if err := warmRestriction(cfg); err != nil {
		return nil, err
	}
	warm := cfg
	warm.Bits, warm.Repetition = nil, 0
	s, err := prepareChannel(warm)
	if err != nil {
		return nil, err
	}
	plat := warm.boot()
	defer plat.Close()
	if err := s.createProcs(plat); err != nil {
		return nil, err
	}

	ws := &ChannelWarmState{warmCfg: s.cfg}
	// Warm actors are spawned in the same order as RunChannel's combined
	// actors (trojan first, then spy), so they get the same spawn ids and
	// the engine breaks clock ties identically — the warm operation stream
	// is bit-for-bit the one a fresh full run would produce.
	plat.SpawnThread("trojan", s.trojanProc, s.cfg.TrojanCore, func(th *platform.Thread) {
		if s.trojanWarm(th) {
			ws.trojanSt, ws.trojanClock = th.State(), th.Now()
		}
	})
	plat.SpawnThread("spy", s.spyProc, s.cfg.SpyCore, func(th *platform.Thread) {
		if s.spyWarm(th) {
			ws.spySt, ws.spyClock = th.State(), th.Now()
		}
	})
	plat.Run(-1)
	if s.trojanErr != nil {
		return nil, s.trojanErr
	}
	if s.spyErr != nil {
		return nil, s.spyErr
	}
	ws.snap = plat.Snapshot()
	ws.evSet = s.evSet
	ws.monitor = s.monitor
	ws.spyThreshold = s.spyThreshold
	ws.evictionSetSize = s.res.EvictionSetSize
	ws.monitorScore = s.res.MonitorScore
	ws.setupCycles = s.res.SetupCycles
	return ws, nil
}

// compatible rejects configs whose warm phase would have differed from the
// one this state was produced under.
func (ws *ChannelWarmState) compatible(cfg ChannelConfig) error {
	w := ws.warmCfg
	switch {
	case cfg.Options != w.Options:
		return fmt.Errorf("core: warm state options mismatch")
	case cfg.Index512 != w.Index512:
		return fmt.Errorf("core: warm state Index512 mismatch (%d != %d)", cfg.Index512, w.Index512)
	case cfg.TwoPhaseEviction != w.TwoPhaseEviction:
		return fmt.Errorf("core: warm state TwoPhaseEviction mismatch")
	case cfg.TrojanCore != w.TrojanCore || cfg.SpyCore != w.SpyCore:
		return fmt.Errorf("core: warm state core placement mismatch")
	case cfg.CalBudget != w.CalBudget || cfg.SetupBudget != w.SetupBudget || cfg.SearchBudget != w.SearchBudget:
		return fmt.Errorf("core: warm state schedule mismatch")
	}
	return nil
}

// Run executes one transmission from the warm state: fork the snapshot,
// resume the trojan and spy threads where their warm phase left off, and
// run Algorithm 2 with cfg's payload and window. The result is identical —
// probe latencies, decoded bits, footprint, and all — to what RunChannel
// would return for the same config, because the forked platform resumes
// the engine's RNG stream and memory state exactly where the warm phase
// ended (see TestWarmForkMatchesFreshRun).
func (ws *ChannelWarmState) Run(cfg ChannelConfig) (*ChannelResult, error) {
	cfg.applyDefaults()
	if err := warmRestriction(cfg); err != nil {
		return nil, err
	}
	if err := ws.compatible(cfg); err != nil {
		return nil, err
	}
	s, err := prepareChannel(cfg)
	if err != nil {
		return nil, err
	}
	plat := ws.snap.Fork()
	defer plat.Close()
	s.trojanProc, s.spyProc = plat.Procs()[0], plat.Procs()[1]
	s.evSet = ws.evSet
	s.monitor = ws.monitor
	s.spyThreshold = ws.spyThreshold
	s.liveEvictionSet = ws.evSet
	s.liveMonitor = []enclave.VAddr{ws.monitor}
	s.res.EvictionSetSize = ws.evictionSetSize
	s.res.MonitorScore = ws.monitorScore
	s.res.SetupCycles = ws.setupCycles
	s.res.SpyThreshold = ws.spyThreshold

	if s.epochEligible() && cleanThreadState(ws.trojanSt) && cleanThreadState(ws.spySt) {
		return ws.runEpochFork(s, plat)
	}

	// Same spawn order as RunChannel (trojan id 0, spy id 1, stats-reset
	// next), so clock ties resolve as they would in a fresh run.
	plat.ResumeThread("trojan", s.trojanProc, ws.trojanClock, ws.trojanSt, func(th *platform.Thread) {
		s.trojanTransmit(th)
	})
	plat.ResumeThread("spy", s.spyProc, ws.spyClock, ws.spySt, func(th *platform.Thread) {
		s.spyTransmit(th)
	})
	s.spawnStatsReset(plat)

	plat.Run(s.tEnd + s.cfg.Window)
	return s.finish(plat, nil)
}
