package core

import (
	"math"

	"meecc/internal/enclave"
	"meecc/internal/platform"
	"meecc/internal/sim"
)

// TimingMechanismResult is one row of the §3 (Figure 2) comparison: how an
// enclave can measure the latency of one of its own memory accesses, and
// what each mechanism costs.
type TimingMechanismResult struct {
	Mechanism string
	// AvailableInEnclave is false for plain rdtsc, which raises #UD in
	// SGX1 enclave mode.
	AvailableInEnclave bool
	// MeanOverhead is the average of (measured - true latency) in cycles:
	// the measurement cost folded into every reading.
	MeanOverhead float64
	// StdDev of the overhead — the mechanism's resolution limit.
	StdDev float64
	// Samples actually taken.
	Samples int
}

// Usable reports whether the mechanism can resolve the channel's ~300-cycle
// hit/miss difference (overhead jitter below the signal; ambient latency
// spikes inflate the standard deviation without breaking threshold
// decoding, so the bound is the signal magnitude itself).
func (r TimingMechanismResult) Usable() bool {
	return r.AvailableInEnclave && r.StdDev < 280
}

// TimingStudy reproduces the Section 3 comparison of time sources
// (Figure 2): plain rdtsc (unavailable in enclave mode), rdtsc via OCALL
// (8000–15000 cycles per call), and the hyperthread timer — both the
// analytic model the attack uses and an explicit timer-thread actor
// validating it. Each mechanism measures flushed protected-region accesses
// whose true latency is known to the harness.
func TimingStudy(opts Options, samples int) ([]TimingMechanismResult, error) {
	plat := opts.boot()
	defer plat.Close()

	pr := plat.NewProcess("timing")
	if _, err := pr.CreateEnclave(64); err != nil {
		return nil, err
	}
	base := pr.Enclave().Base
	tsVA := plat.StartTimerThread(pr, 1) // sibling hyperthread's store loop

	type acc struct {
		sum, sumSq float64
		n          int
	}
	add := func(a *acc, v float64) { a.sum += v; a.sumSq += v * v; a.n++ }
	stats := func(a acc) (mean, sd float64) {
		if a.n == 0 {
			return 0, 0
		}
		mean = a.sum / float64(a.n)
		sd = math.Sqrt(math.Max(0, a.sumSq/float64(a.n)-mean*mean))
		return mean, sd
	}

	var ocall, analytic, actor acc
	plat.SpawnThread("timing", pr, 0, func(th *platform.Thread) {
		th.EnterEnclave()
		addr := func(i int) enclave.VAddr { return base + enclave.VAddr((i%500)*512) }

		// OCALL-based rdtsc (Figure 2b).
		for i := 0; i < samples; i++ {
			va := addr(i)
			t1 := th.OCallRdtsc()
			r := th.Access(va)
			t2 := th.OCallRdtsc()
			th.Flush(va)
			add(&ocall, float64(t2-t1)-float64(r.Lat))
		}
		// Hyperthread timer, analytic model (Figure 2c; what the attack
		// code uses).
		for i := 0; i < samples; i++ {
			va := addr(samples + i)
			t1 := th.TimerNow()
			r := th.Access(va)
			t2 := th.TimerNow()
			th.Flush(va)
			add(&analytic, float64(t2-t1)-float64(r.Lat))
		}
		// Hyperthread timer, explicit actor: read the sibling thread's
		// stores from shared non-enclave memory.
		for i := 0; i < samples; i++ {
			va := addr(2*samples + i)
			t1, _ := th.ReadU64(tsVA)
			r := th.Access(va)
			t2, _ := th.ReadU64(tsVA)
			th.Flush(va)
			add(&actor, float64(t2-t1)-float64(r.Lat))
		}
	})
	// The timer-thread actor never exits on its own; run with a budget
	// that comfortably covers the measurement loop (OCALLs dominate at
	// ~24k cycles per sample).
	plat.Run(sim.Cycles(samples)*30000 + 1_000_000)

	out := []TimingMechanismResult{
		{Mechanism: "rdtsc", AvailableInEnclave: false},
	}
	m, sd := stats(ocall)
	out = append(out, TimingMechanismResult{
		Mechanism: "ocall-rdtsc", AvailableInEnclave: true,
		MeanOverhead: m, StdDev: sd, Samples: ocall.n,
	})
	m, sd = stats(analytic)
	out = append(out, TimingMechanismResult{
		Mechanism: "hyperthread-timer", AvailableInEnclave: true,
		MeanOverhead: m, StdDev: sd, Samples: analytic.n,
	})
	m, sd = stats(actor)
	out = append(out, TimingMechanismResult{
		Mechanism: "hyperthread-timer-actor", AvailableInEnclave: true,
		MeanOverhead: m, StdDev: sd, Samples: actor.n,
	})
	return out, nil
}
