package core

import (
	"fmt"

	"meecc/internal/enclave"
	"meecc/internal/platform"
	"meecc/internal/sim"
)

// LLCChannelResult reports a classic last-level-cache Prime+Probe covert
// channel run — the family of attacks (Liu et al. [7], Maurice et al. [9])
// the paper positions the MEE channel against. It runs entirely outside
// enclaves: hugepages and rdtsc are available, which is exactly what SGX
// takes away.
type LLCChannelResult struct {
	Sent       []byte
	Received   []byte
	ProbeTimes []sim.Cycles
	Threshold  sim.Cycles
	BitErrors  int
	ErrorRate  float64
	KBps       float64
	Footprint  *AttackFootprint
}

// AttackFootprint captures what a hardware-performance-counter detector
// would see during transmission: LLC conflict pressure and its
// concentration, plus MEE traffic.
type AttackFootprint struct {
	// LLCEvictions during transmission.
	LLCEvictions uint64
	// LLCHottestShare is the hottest single LLC set's share of all LLC
	// evictions — near 1.0 for a classic P+P channel (one set hammered),
	// near 0 for benign traffic and for the MEE channel.
	LLCHottestShare float64
	// MEEReads during transmission: protected-region accesses, the MEE
	// channel's (invisible-to-LLC-counters) medium.
	MEEReads uint64
}

// llcSetBits is log2 of the LLC set count in the default platform.
const llcSpanBytes = 512 << 10 // bytes covering every LLC set once (8192 sets × 64 B)

// RunLLCChannel executes the LLC Prime+Probe covert channel: the spy owns
// a 16-way LLC eviction set built from hugepage arithmetic, the trojan
// signals '1' by touching one conflicting address. cfg.Window defaults to
// 5000 cycles here — LLC channels are faster than the MEE channel because
// probes hit on-chip.
func RunLLCChannel(cfg ChannelConfig) (*LLCChannelResult, error) {
	if cfg.Window <= 0 {
		cfg.Window = 5000
	}
	cfg.applyDefaults()
	for _, b := range cfg.Bits {
		if b > 1 {
			return nil, fmt.Errorf("core: bits must be 0/1, got %d", b)
		}
	}
	plat := cfg.boot()
	defer plat.Close()

	llcWays := plat.Config().CPU.LLCWays
	hugepagesNeeded := llcWays * llcSpanBytes / platform.HugepageBytes // 4 for 16 ways

	spyProc := plat.NewProcess("llc-spy")
	trojanProc := plat.NewProcess("llc-trojan")
	spyBuf := spyProc.AllocHugepages(hugepagesNeeded)
	trojanBuf := trojanProc.AllocHugepages(1)

	// Agreed LLC set: both sides derive addresses from the same offset
	// within their hugepages (the set index is fully determined by the
	// offset, since hugepages are 2 MB aligned).
	agreedOff := enclave.VAddr(cfg.Index512 * 512)
	evSet := make([]enclave.VAddr, 0, llcWays)
	for hp := 0; hp < hugepagesNeeded; hp++ {
		for k := 0; k < platform.HugepageBytes/llcSpanBytes; k++ {
			evSet = append(evSet, spyBuf+enclave.VAddr(hp*platform.HugepageBytes+k*llcSpanBytes)+agreedOff)
		}
	}
	conflict := trojanBuf + agreedOff

	t0 := sim.Cycles(1_000_000) // brief calibration phase only
	tEnd := t0 + sim.Cycles(len(cfg.Bits))*cfg.Window
	res := &LLCChannelResult{Sent: cfg.Bits}

	// Reset cache statistics right at transmission start so the footprint
	// reflects the channel itself, not setup.
	plat.Engine().SpawnAt("stats-reset", t0-1, func(p *sim.Proc) {
		plat.Caches().LLC().ResetStats()
		plat.MEE().ResetStats()
	})

	plat.SpawnThread("llc-spy", spyProc, cfg.SpyCore, func(th *platform.Thread) {
		probeAll := func() sim.Cycles {
			t1 := th.Rdtsc()
			for _, a := range evSet {
				th.Access(a)
			}
			t2 := th.Rdtsc()
			return t2 - t1
		}
		// Prime and calibrate the all-hit baseline.
		for i := 0; i < 3; i++ {
			probeAll()
		}
		var base sim.Cycles
		const samples = 10
		for i := 0; i < samples; i++ {
			base += probeAll()
		}
		// One evicted way costs one DRAM access (~250); split it.
		res.Threshold = base/samples + 125

		res.Received = make([]byte, len(cfg.Bits))
		res.ProbeTimes = make([]sim.Cycles, len(cfg.Bits))
		probeOffset := sim.Cycles(float64(cfg.Window) * cfg.ProbePhase)
		for i := range cfg.Bits {
			th.SpinUntil(t0 + sim.Cycles(i)*cfg.Window + probeOffset)
			t := probeAll()
			res.ProbeTimes[i] = t
			if t > res.Threshold {
				res.Received[i] = 1
			}
		}
	})

	plat.SpawnThread("llc-trojan", trojanProc, cfg.TrojanCore, func(th *platform.Thread) {
		for i, bit := range cfg.Bits {
			th.SpinUntil(t0 + sim.Cycles(i)*cfg.Window)
			if bit == 1 {
				// The spy's next prime evicts this line again (inclusive
				// LLC back-invalidation), so no flush is needed.
				th.Access(conflict)
			}
		}
	})

	if cfg.onPlatform != nil {
		cfg.onPlatform(plat, t0, tEnd)
	}
	plat.Run(tEnd + cfg.Window)
	if res.Received == nil {
		return res, fmt.Errorf("core: LLC spy never completed")
	}
	for i := range cfg.Bits {
		if res.Received[i] != cfg.Bits[i] {
			res.BitErrors++
		}
	}
	res.ErrorRate = float64(res.BitErrors) / float64(len(cfg.Bits))
	res.KBps = plat.WindowKBps(cfg.Window)
	res.Footprint = captureFootprint(plat)
	return res, nil
}

// captureFootprint snapshots detector-visible statistics.
func captureFootprint(plat *platform.Platform) *AttackFootprint {
	llc := plat.Caches().LLC()
	st := llc.Stats()
	_, hottest := llc.MaxSetEvictions()
	share := 0.0
	if st.Evictions > 0 {
		share = float64(hottest) / float64(st.Evictions)
	}
	return &AttackFootprint{
		LLCEvictions:    st.Evictions,
		LLCHottestShare: share,
		MEEReads:        plat.MEE().Stats().Reads,
	}
}
