package core

import (
	"bytes"
	"fmt"

	"meecc/internal/code"
	"meecc/internal/enclave"
	"meecc/internal/fault"
	"meecc/internal/obs"
	"meecc/internal/platform"
	"meecc/internal/sim"
)

// This file is the adaptive session layer on top of the raw Algorithm 2
// channel: a long-lived trojan/spy pair that transmits a payload in
// CRC-framed chunks, watches link health through pilot bits, and reacts to
// degradation with a bounded ladder of countermeasures — per-chunk
// retransmission, threshold re-calibration, a full re-acquisition
// (Algorithm 1 re-run plus monitor re-discovery) when the eviction set goes
// stale after EPC paging, and graceful degradation (window widening, then
// repetition coding). Every reaction is recorded in a DegradationReport.
//
// Coordination model: the spy is the controller. Both sides share a round
// plan out of band (the standard colluding-endpoints assumption this repo
// already makes for ACK/NACK in RunReliable); in the simulation the plan is
// a struct the spy writes strictly before each round boundary and the
// trojan reads strictly after it, which the engine's clock-ordered actor
// scheduling turns into a deterministic, race-free rendezvous.

// ActionKind labels one adaptation the session layer took.
type ActionKind int

const (
	// ActRetransmit reschedules chunks whose CRC failed.
	ActRetransmit ActionKind = iota
	// ActRecalibrate re-derives the spy's hit/miss threshold.
	ActRecalibrate
	// ActResync re-runs acquisition: the trojan rebuilds its eviction set
	// (Algorithm 1) and bursts while the spy re-discovers its monitor.
	ActResync
	// ActWidenWindow doubles the per-bit window.
	ActWidenWindow
	// ActRepetition raises the repetition-coding factor.
	ActRepetition
	// ActBackoff inserts an idle gap before the next round.
	ActBackoff
	// ActAbort gives up: the ladder is exhausted.
	ActAbort
)

func (k ActionKind) String() string {
	switch k {
	case ActRetransmit:
		return "retransmit"
	case ActRecalibrate:
		return "recalibrate"
	case ActResync:
		return "resync"
	case ActWidenWindow:
		return "widen-window"
	case ActRepetition:
		return "repetition"
	case ActBackoff:
		return "backoff"
	case ActAbort:
		return "abort"
	default:
		return fmt.Sprintf("ActionKind(%d)", int(k))
	}
}

// Action is one recorded adaptation.
type Action struct {
	Round  int
	At     sim.Cycles
	Kind   ActionKind
	Detail string
}

func (a Action) String() string {
	return fmt.Sprintf("round %d @%d %s: %s", a.Round, a.At, a.Kind, a.Detail)
}

// DegradationReport is the full history of what the session layer did and
// why — the evidence trail for "the payload arrived, but the link was ugly".
type DegradationReport struct {
	Actions []Action
	// Rounds is how many rounds ran (data + resync).
	Rounds int
	// PilotBER is the per-data-round pilot bit-error rate.
	PilotBER []float64
	// Retransmits counts chunk retransmissions; Recals and Resyncs count
	// their actions.
	Retransmits, Recals, Resyncs int
	// FinalWindow and FinalRepetition are the operating point at session end.
	FinalWindow     sim.Cycles
	FinalRepetition int
}

func (r *DegradationReport) add(round int, at sim.Cycles, kind ActionKind, format string, args ...any) {
	r.Actions = append(r.Actions, Action{Round: round, At: at, Kind: kind, Detail: fmt.Sprintf(format, args...)})
}

// Count returns how many actions of the given kind were taken.
func (r *DegradationReport) Count(kind ActionKind) int {
	n := 0
	for _, a := range r.Actions {
		if a.Kind == kind {
			n++
		}
	}
	return n
}

// ResilientConfig parameterizes RunResilient. The embedded ChannelConfig
// supplies the machine, core placement, base window, noise, and fault
// campaign; its Bits field is ignored (the payload defines the bits).
type ResilientConfig struct {
	ChannelConfig

	// ChunkBytes splits the payload into ARQ units (default 8).
	ChunkBytes int
	// PilotLen is the number of known alternating bits opening each data
	// round (default 16); the spy estimates link health from them.
	PilotLen int
	// ChunksPerRound bounds how many chunks one data round carries
	// (default 2).
	ChunksPerRound int
	// MaxRounds bounds the session (default 64).
	MaxRounds int
	// MaxWindow caps window widening (default 4x the base window).
	MaxWindow sim.Cycles
	// MaxRepetition caps repetition coding (default 5; raised 1 -> 3 -> 5).
	MaxRepetition int
	// MaxChunkAttempts is how often one chunk may fail before the ladder
	// must degrade the operating point (default 3).
	MaxChunkAttempts int
	// MaxResyncs bounds Algorithm-1 re-runs (default 3).
	MaxResyncs int
	// DropoutStale is the pilot dropout fraction (expected-1 bits seen as 0)
	// that declares the eviction set stale (default 0.6).
	DropoutStale float64
	// PilotBad is the pilot BER above which the link counts as degraded
	// (default 0.25).
	PilotBad float64

	// ResyncBudget is the cycle budget of one re-acquisition round (default
	// CalBudget + SetupBudget + SearchBudget, like initial setup).
	ResyncBudget sim.Cycles
	// RecalBudget is the extra round time reserved for a re-calibration
	// (default 2M cycles).
	RecalBudget sim.Cycles
	// CtrlGap is the quiet tail of every round in which the spy commits the
	// next plan (default 200k cycles).
	CtrlGap sim.Cycles
	// Backoff0 and MaxBackoff bound the idle gap inserted after rounds that
	// delivered nothing (exponential, default 500k .. 8M cycles).
	Backoff0, MaxBackoff sim.Cycles
}

// DefaultResilientConfig returns the session layer at the paper's operating
// point.
func DefaultResilientConfig(seed uint64) ResilientConfig {
	return ResilientConfig{ChannelConfig: DefaultChannelConfig(seed)}
}

func (c *ResilientConfig) applyDefaults() {
	c.ChannelConfig.applyDefaults()
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 8
	}
	if c.PilotLen <= 0 {
		c.PilotLen = 16
	}
	if c.ChunksPerRound <= 0 {
		c.ChunksPerRound = 2
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 64
	}
	if c.MaxWindow <= 0 {
		c.MaxWindow = 4 * c.Window
	}
	if c.MaxRepetition <= 0 {
		c.MaxRepetition = 5
	}
	if c.MaxChunkAttempts <= 0 {
		c.MaxChunkAttempts = 3
	}
	if c.MaxResyncs <= 0 {
		c.MaxResyncs = 3
	}
	if c.DropoutStale <= 0 {
		c.DropoutStale = 0.6
	}
	if c.PilotBad <= 0 {
		c.PilotBad = 0.25
	}
	if c.ResyncBudget <= 0 {
		c.ResyncBudget = c.CalBudget + c.SetupBudget + c.SearchBudget
	}
	if c.RecalBudget <= 0 {
		c.RecalBudget = 2_000_000
	}
	if c.CtrlGap <= 0 {
		c.CtrlGap = 200_000
	}
	if c.Backoff0 <= 0 {
		c.Backoff0 = 500_000
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 8_000_000
	}
}

// ResilientResult reports one adaptive session.
type ResilientResult struct {
	// Payload is the delivered payload (nil unless every chunk arrived
	// CRC-intact — the session never returns silently corrupt data).
	Payload   []byte
	Delivered bool
	Report    DegradationReport
	// GoodputKBps is payload bytes over the whole post-setup session time,
	// including pilots, retransmissions, resyncs, and backoff.
	GoodputKBps float64
	// BitsSent is every channel bit the trojan scheduled (pilots included).
	BitsSent int
	// Chunks and ChunksDelivered count the ARQ units.
	Chunks, ChunksDelivered int
	SpyThreshold            sim.Cycles
	EvictionSetSize         int
	SetupCycles             sim.Cycles
	// SessionCycles is total simulated time from transmission start to the
	// final round's end.
	SessionCycles sim.Cycles
	// Faults is the applied-fault log when a chaos campaign was armed.
	Faults []fault.Injected
}

// roundPlan is the shared schedule for one round. The spy writes it during
// the previous round's control gap; the trojan reads it at the boundary.
type roundPlan struct {
	seq    int
	start  sim.Cycles
	window sim.Cycles
	rep    int
	chunks []int
	resync bool
	recal  bool
	done   bool
	abort  bool
	reason string
}

// roundObs is what the spy observed in one executed round.
type roundObs struct {
	plan     roundPlan
	end      sim.Cycles // the executed round's boundary
	at       sim.Cycles // spy clock at decision time
	pilotErr float64
	dropout  float64
	decoded  map[int][]byte // chunk index -> CRC-intact payload
	failed   []int          // chunk indices whose CRC failed
	resyncOK bool
}

// controller is the spy-side decision logic: a pure state machine from
// round observations to round plans, kept free of simulation types in its
// transitions so the ladder is unit-testable without a platform.
type controller struct {
	cfg       *ResilientConfig
	chunkBits []int // encoded bits per chunk
	got       [][]byte
	attempts  []int
	window    sim.Cycles
	rep       int
	backoff   sim.Cycles
	resyncs   int
	rounds    int
	bitsSent  int
	report    DegradationReport

	// Degradation-ladder transition counters (nil when unobserved).
	cWiden *obs.Counter
	cRep   *obs.Counter
}

func newController(cfg *ResilientConfig, chunkSizes []int) *controller {
	codec := code.Codec{InterleaveDepth: 8}
	c := &controller{
		cfg:       cfg,
		chunkBits: make([]int, len(chunkSizes)),
		got:       make([][]byte, len(chunkSizes)),
		attempts:  make([]int, len(chunkSizes)),
		window:    cfg.Window,
		rep:       1,
		backoff:   cfg.Backoff0,
	}
	for i, n := range chunkSizes {
		c.chunkBits[i] = codec.EncodedBits(n)
	}
	return c
}

// observe surfaces the controller's session accounting: the ARQ/ladder
// totals as deferred samples over the report (read once, at snapshot time)
// and per-rung degradation counters incremented as the ladder moves. Safe
// with a nil observer.
func (c *controller) observe(o *obs.Observer) {
	if o == nil {
		return
	}
	o.Sample("arq.rounds", obs.Semantic, func() uint64 { return uint64(c.rounds) })
	o.Sample("arq.retransmits", obs.Semantic, func() uint64 { return uint64(c.report.Retransmits) })
	o.Sample("arq.bits_sent", obs.Semantic, func() uint64 { return uint64(c.bitsSent) })
	o.Sample("channel.recalibrations", obs.Semantic, func() uint64 { return uint64(c.report.Recals) })
	o.Sample("channel.resyncs", obs.Semantic, func() uint64 { return uint64(c.report.Resyncs) })
	c.cWiden = o.Counter("channel.degrade.widen_window")
	c.cRep = o.Counter("channel.degrade.repetition")
}

// pending returns undelivered chunk indices in order.
func (c *controller) pending() []int {
	var out []int
	for i, g := range c.got {
		if g == nil {
			out = append(out, i)
		}
	}
	return out
}

// roundEnd computes a plan's boundary — both endpoints derive it from the
// shared plan, so it needs no further coordination.
func (c *controller) roundEnd(p roundPlan) sim.Cycles {
	return roundEnd(c.cfg, c.chunkBits, p)
}

func roundEnd(cfg *ResilientConfig, chunkBits []int, p roundPlan) sim.Cycles {
	if p.resync {
		return p.start + cfg.ResyncBudget + cfg.CtrlGap
	}
	bits := cfg.PilotLen
	for _, ci := range p.chunks {
		bits += chunkBits[ci]
	}
	end := p.start + sim.Cycles(bits*p.rep)*p.window + cfg.CtrlGap
	if p.recal {
		end += cfg.RecalBudget
	}
	return end
}

// schedule fills a plan's chunk list from the pending set and accounts the
// bits the trojan will put on the channel.
func (c *controller) schedule(p *roundPlan) {
	pend := c.pending()
	if len(pend) > c.cfg.ChunksPerRound {
		pend = pend[:c.cfg.ChunksPerRound]
	}
	p.chunks = pend
	bits := c.cfg.PilotLen
	for _, ci := range pend {
		bits += c.chunkBits[ci]
	}
	c.bitsSent += bits * p.rep
}

// first builds the opening plan at transmission start.
func (c *controller) first(t0 sim.Cycles) roundPlan {
	p := roundPlan{seq: 1, start: t0, window: c.window, rep: c.rep}
	c.schedule(&p)
	return p
}

// abortPlan builds the terminal failure plan.
func (c *controller) abortPlan(at sim.Cycles, format string, args ...any) roundPlan {
	reason := fmt.Sprintf(format, args...)
	c.report.add(c.rounds, at, ActAbort, "%s", reason)
	return roundPlan{seq: -1, abort: true, reason: reason}
}

// degrade widens the window, then raises repetition. Returns false when the
// operating point is already at the floor.
func (c *controller) degrade(at sim.Cycles) bool {
	if c.window < c.cfg.MaxWindow {
		c.window *= 2
		if c.window > c.cfg.MaxWindow {
			c.window = c.cfg.MaxWindow
		}
		c.report.add(c.rounds, at, ActWidenWindow, "window -> %d", c.window)
		c.cWiden.Inc()
		return true
	}
	if c.rep < c.cfg.MaxRepetition {
		c.rep += 2
		if c.rep > c.cfg.MaxRepetition {
			c.rep = c.cfg.MaxRepetition
		}
		c.report.add(c.rounds, at, ActRepetition, "repetition -> %d", c.rep)
		c.cRep.Inc()
		return true
	}
	return false
}

// next is the ladder: fold one round's observations into state and emit the
// following plan.
func (c *controller) next(obs roundObs) roundPlan {
	cfg := c.cfg
	c.rounds++
	round := c.rounds
	if !obs.plan.resync {
		c.report.PilotBER = append(c.report.PilotBER, obs.pilotErr)
	}

	// Fold in arrivals and retransmission bookkeeping.
	for idx, pl := range obs.decoded {
		if c.got[idx] == nil {
			c.got[idx] = pl
		}
	}
	if len(obs.failed) > 0 {
		for _, idx := range obs.failed {
			c.attempts[idx]++
		}
		c.report.Retransmits += len(obs.failed)
		c.report.add(round, obs.at, ActRetransmit, "chunks %v failed CRC", obs.failed)
	}
	if len(c.pending()) == 0 {
		return roundPlan{seq: obs.plan.seq + 1, done: true}
	}
	if c.rounds >= cfg.MaxRounds {
		return c.abortPlan(obs.at, "round budget exhausted (%d rounds, %d/%d chunks)",
			c.rounds, len(c.got)-len(c.pending()), len(c.got))
	}

	next := roundPlan{seq: obs.plan.seq + 1}

	// Link-health ladder, most drastic condition first.
	switch {
	case obs.plan.resync && !obs.resyncOK:
		if c.resyncs >= cfg.MaxResyncs {
			return c.abortPlan(obs.at, "re-acquisition failed %d times", c.resyncs)
		}
		c.resyncs++
		c.report.Resyncs++
		next.resync = true
		c.report.add(round, obs.at, ActResync, "retry: monitor score too low")

	case !obs.plan.resync && obs.dropout >= cfg.DropoutStale:
		if c.resyncs >= cfg.MaxResyncs {
			return c.abortPlan(obs.at, "eviction set stale (dropout %.2f) and resync budget spent", obs.dropout)
		}
		c.resyncs++
		c.report.Resyncs++
		next.resync = true
		c.report.add(round, obs.at, ActResync, "pilot dropout %.2f: eviction set presumed stale", obs.dropout)

	case !obs.plan.resync && obs.pilotErr > cfg.PilotBad:
		if !obs.plan.recal {
			// Cheapest guess first: the threshold moved.
			next.recal = true
			c.report.Recals++
			c.report.add(round, obs.at, ActRecalibrate, "pilot BER %.2f", obs.pilotErr)
		} else if !c.degrade(obs.at) {
			return c.abortPlan(obs.at, "pilot BER %.2f at maximum degradation", obs.pilotErr)
		}

	default:
		// Healthy pilot but chunks can still fail (bursts between pilots);
		// degrade once a chunk has burned its attempt budget.
		for _, idx := range obs.failed {
			if c.attempts[idx] >= cfg.MaxChunkAttempts {
				if !c.degrade(obs.at) {
					return c.abortPlan(obs.at, "chunk %d failed %d times at maximum degradation", idx, c.attempts[idx])
				}
				for i := range c.attempts {
					c.attempts[i] = 0
				}
				break
			}
		}
	}

	// Backoff: a round that moved nothing earns an idle gap (the hostile
	// condition may be transient); any progress resets it.
	gap := sim.Cycles(0)
	if !obs.plan.resync && len(obs.decoded) == 0 && len(obs.failed) > 0 {
		gap = c.backoff
		c.backoff *= 2
		if c.backoff > cfg.MaxBackoff {
			c.backoff = cfg.MaxBackoff
		}
		c.report.add(round, obs.at, ActBackoff, "idle %d cycles", gap)
	} else if len(obs.decoded) > 0 {
		c.backoff = cfg.Backoff0
	}

	next.start = obs.end + gap
	next.window = c.window
	next.rep = c.rep
	if !next.resync {
		c.schedule(&next)
	}
	return next
}

// resilientSession is the shared rendezvous state between the two actors.
type resilientSession struct {
	plan roundPlan
}

// calSlice returns the n-th disjoint calibration pool so re-calibrations
// sample fresh 512 B blocks (a reused block's versions line may already be
// cached, biasing the miss estimate). Slices past the last allocated pool
// reuse the final one.
func calSlice(base enclave.VAddr, n, slices, index512 int) []enclave.VAddr {
	if n >= slices {
		n = slices - 1
	}
	return pageAddrs(base+enclave.VAddr(n*calPages*enclave.PageBytes), calPages, index512)
}

// calSlices is how many disjoint calibration pools each enclave carries:
// one for initial setup plus one per re-calibration/resync the ladder can
// plausibly take.
const calSlices = 6

// RunResilient transmits payload over the covert channel with the adaptive
// session layer. It either delivers the payload CRC-intact or returns an
// explicit error alongside the degradation report — never silent corruption.
func RunResilient(cfg ResilientConfig, payload []byte) (*ResilientResult, error) {
	cfg.applyDefaults()
	if len(payload) == 0 {
		return nil, fmt.Errorf("core: resilient transfer of empty payload")
	}
	if len(payload) > code.MaxPayload {
		return nil, fmt.Errorf("core: payload %d exceeds %d bytes", len(payload), code.MaxPayload)
	}

	// Split into ARQ chunks and pre-encode on the trojan side.
	codec := code.Codec{InterleaveDepth: 8}
	var chunks [][]byte
	for off := 0; off < len(payload); off += cfg.ChunkBytes {
		end := off + cfg.ChunkBytes
		if end > len(payload) {
			end = len(payload)
		}
		chunks = append(chunks, payload[off:end])
	}
	encoded := make([][]byte, len(chunks))
	chunkSizes := make([]int, len(chunks))
	for i, ch := range chunks {
		bits, err := codec.Encode(ch)
		if err != nil {
			return nil, err
		}
		encoded[i] = bits
		chunkSizes[i] = len(ch)
	}

	plat := cfg.boot()
	defer plat.Close()

	tCalEnd := cfg.CalBudget
	tSetupEnd := tCalEnd + cfg.SetupBudget
	t0 := tSetupEnd + cfg.SearchBudget

	trojanProc := plat.NewProcess("trojan")
	spyProc := plat.NewProcess("spy")
	if _, err := trojanProc.CreateEnclave(calSlices*calPages + trojanCandidates); err != nil {
		return nil, err
	}
	if _, err := spyProc.CreateEnclave(calSlices*calPages + spyCandidates); err != nil {
		return nil, err
	}
	trojanBase := trojanProc.Enclave().Base
	spyBase := spyProc.Enclave().Base
	trojanCands := pageAddrs(trojanBase+enclave.VAddr(calSlices*calPages*enclave.PageBytes), trojanCandidates, cfg.Index512)
	spyCands := pageAddrs(spyBase+enclave.VAddr(calSlices*calPages*enclave.PageBytes), spyCandidates, cfg.Index512)

	ctl := newController(&cfg, chunkSizes)
	ctl.observe(cfg.Obs)
	s := &resilientSession{}
	res := &ResilientResult{Chunks: len(chunks)}
	var trojanErr, spyErr error
	var trojanDone, spyDone bool
	var liveEvictionSet, liveMonitor []enclave.VAddr
	probeOffset := func(w sim.Cycles) sim.Cycles { return sim.Cycles(float64(w) * cfg.ProbePhase) }

	// ------------------------------------------------------------------
	// Trojan: initial acquisition, then plan-driven rounds.
	trojanTh := plat.SpawnThread("trojan", trojanProc, cfg.TrojanCore, func(th *platform.Thread) {
		defer func() { trojanDone = true }()
		th.EnterEnclave()
		calUsed := 0
		threshold := calibrateThreshold(th, calSlice(trojanBase, calUsed, calSlices, cfg.Index512))
		calUsed++
		th.SpinUntil(tCalEnd)

		a1, err := FindEvictionSet(th, trojanCands, threshold)
		if err != nil {
			trojanErr = err
			return
		}
		evSet := a1.EvictionSet
		liveEvictionSet = evSet
		res.EvictionSetSize = len(evSet)
		res.SetupCycles = th.Now()
		if th.Now() > tSetupEnd {
			trojanErr = fmt.Errorf("core: trojan setup overran its budget (%d > %d)", th.Now(), tSetupEnd)
			return
		}

		evict := func() {
			for i := 0; i < len(evSet); i++ {
				th.Access(evSet[i])
				th.Flush(evSet[i])
			}
			th.Mfence()
			if cfg.TwoPhaseEviction {
				for i := len(evSet) - 1; i >= 0; i-- {
					th.Access(evSet[i])
					th.Flush(evSet[i])
				}
				th.Mfence()
			}
		}
		burstUntil := func(deadline sim.Cycles) {
			for th.Now() < deadline {
				evict()
				th.Spin(1000)
			}
		}

		th.SpinUntil(tSetupEnd)
		burstUntil(t0 - 20_000)

		lastSeq := 0
		for {
			p := s.plan
			if p.done || p.abort {
				return
			}
			if p.seq == lastSeq {
				// Timer drift carried us past the boundary before the spy
				// committed the next plan; poll until it lands.
				th.Spin(cfg.CtrlGap / 4)
				continue
			}
			lastSeq = p.seq
			end := roundEnd(&cfg, ctl.chunkBits, p)
			if p.resync {
				// Re-acquisition: fresh threshold, Algorithm 1 re-run, then
				// burst so the spy can re-locate its monitor.
				waitUntilTimer(th, p.start)
				threshold = calibrateThreshold(th, calSlice(trojanBase, calUsed, calSlices, cfg.Index512))
				calUsed++
				if a1, err := FindEvictionSet(th, trojanCands, threshold); err == nil {
					evSet = a1.EvictionSet
					liveEvictionSet = evSet
					res.EvictionSetSize = len(evSet)
				}
				burstUntil(end - cfg.CtrlGap - 20_000)
			} else {
				// Data round: pilot then scheduled chunks, each logical bit
				// over rep consecutive windows.
				bit := 0
				sendBit := func(b byte) {
					for r := 0; r < p.rep; r++ {
						waitUntilTimer(th, p.start+sim.Cycles(bit*p.rep+r)*p.window)
						if b == 1 {
							evict()
						}
					}
					bit++
				}
				for i := 0; i < cfg.PilotLen; i++ {
					sendBit(byte(i % 2))
				}
				for _, ci := range p.chunks {
					for _, b := range encoded[ci] {
						sendBit(b)
					}
				}
			}
			waitUntilTimer(th, end)
		}
	})

	// ------------------------------------------------------------------
	// Spy: initial acquisition, then controller-driven rounds.
	spyTh := plat.SpawnThread("spy", spyProc, cfg.SpyCore, func(th *platform.Thread) {
		defer func() { spyDone = true }()
		th.EnterEnclave()
		calUsed := 0
		th.SpinUntil(tCalEnd / 2)
		threshold := calibrateThreshold(th, calSlice(spyBase, calUsed, calSlices, cfg.Index512))
		calUsed++
		res.SpyThreshold = threshold
		th.SpinUntil(tSetupEnd)

		discover := func() (enclave.VAddr, int) {
			const samples = 10
			bestScore, monitor := -1, enclave.VAddr(0)
			for _, cand := range spyCands {
				score := 0
				for sa := 0; sa < samples; sa++ {
					th.Access(cand)
					th.Flush(cand)
					th.SpinUntil(th.Now() + 40_000)
					if timedAccess(th, cand) > threshold {
						score++
					}
					th.Flush(cand)
				}
				if score > bestScore {
					bestScore, monitor = score, cand
				}
			}
			return monitor, bestScore
		}
		monitor, score := discover()
		if score < 6 {
			spyErr = fmt.Errorf("core: monitor discovery failed (best score %d/10)", score)
			s.plan = ctl.abortPlan(th.Now(), "initial monitor discovery failed (score %d/10)", score)
			return
		}
		if th.Now() > t0 {
			spyErr = fmt.Errorf("core: spy search overran its budget (%d > %d)", th.Now(), t0)
			s.plan = ctl.abortPlan(th.Now(), "spy search overran budget")
			return
		}
		liveMonitor = []enclave.VAddr{monitor}

		plan := ctl.first(t0)
		s.plan = plan
		for !plan.done && !plan.abort {
			end := ctl.roundEnd(plan)
			obs := roundObs{plan: plan, end: end, decoded: map[int][]byte{}}
			if plan.resync {
				// Re-calibrate while the trojan rebuilds, then re-discover
				// the monitor during its burst phase.
				waitUntilTimer(th, plan.start)
				threshold = calibrateThreshold(th, calSlice(spyBase, calUsed, calSlices, cfg.Index512))
				calUsed++
				res.SpyThreshold = threshold
				th.SpinUntil(plan.start + cfg.ResyncBudget - cfg.SearchBudget)
				m, sc := discover()
				if obs.resyncOK = sc >= 6; obs.resyncOK {
					monitor = m
					liveMonitor = []enclave.VAddr{monitor}
				}
			} else {
				// Prime, then decode pilot + chunks with majority voting
				// over the repetition windows.
				waitUntilTimer(th, plan.start-5000)
				th.Access(monitor)
				th.Flush(monitor)
				bit := 0
				readBit := func() byte {
					ones := 0
					for r := 0; r < plan.rep; r++ {
						waitUntilTimer(th, plan.start+sim.Cycles(bit*plan.rep+r)*plan.window+probeOffset(plan.window))
						if timedAccess(th, monitor) > threshold {
							ones++
						}
						th.Flush(monitor)
					}
					bit++
					if ones*2 > plan.rep {
						return 1
					}
					return 0
				}
				pilotErrs, ones, expOnes := 0, 0, 0
				for i := 0; i < cfg.PilotLen; i++ {
					want := byte(i % 2)
					got := readBit()
					if got != want {
						pilotErrs++
					}
					if want == 1 {
						expOnes++
						if got == 1 {
							ones++
						}
					}
				}
				obs.pilotErr = float64(pilotErrs) / float64(cfg.PilotLen)
				if expOnes > 0 {
					obs.dropout = float64(expOnes-ones) / float64(expOnes)
				}
				for _, ci := range plan.chunks {
					bits := make([]byte, ctl.chunkBits[ci])
					for j := range bits {
						bits[j] = readBit()
					}
					if pl, _, err := codec.Decode(bits); err == nil && len(pl) == chunkSizes[ci] {
						obs.decoded[ci] = pl
					} else {
						obs.failed = append(obs.failed, ci)
					}
				}
				if plan.recal {
					threshold = calibrateThreshold(th, calSlice(spyBase, calUsed, calSlices, cfg.Index512))
					calUsed++
					res.SpyThreshold = threshold
				}
			}
			obs.at = th.Now()
			plan = ctl.next(obs)
			s.plan = plan
			if !plan.done && !plan.abort {
				res.SessionCycles = roundEnd(&cfg, ctl.chunkBits, plan) - t0
				waitUntilTimer(th, plan.start-10_000)
			} else {
				res.SessionCycles = end - t0
			}
		}
		if plan.abort {
			spyErr = fmt.Errorf("core: resilient session aborted: %s", plan.reason)
		}
	})

	// ------------------------------------------------------------------
	// Environment: background noise and the chaos campaign.
	if err := spawnNoise(plat, cfg.Noise, cfg.NoiseCore, t0); err != nil {
		return nil, err
	}
	maxRound := sim.Cycles(cfg.PilotLen+cfg.ChunksPerRound*codec.EncodedBits(cfg.ChunkBytes))*
		cfg.MaxWindow*sim.Cycles(cfg.MaxRepetition) + cfg.RecalBudget + cfg.CtrlGap + cfg.MaxBackoff
	hardCap := t0 + sim.Cycles(cfg.MaxRounds)*maxRound +
		sim.Cycles(cfg.MaxResyncs+1)*(cfg.ResyncBudget+cfg.CtrlGap)
	var injector *fault.Injector
	if cfg.Fault != nil {
		fc := *cfg.Fault
		if fc.Start == 0 && fc.End == 0 {
			fc.Start, fc.End = t0, hardCap
		}
		injector = fault.NewPlan(fc).Attach(plat, fault.Targets{
			Trojan: trojanTh, Spy: spyTh,
			TrojanProc: trojanProc, SpyProc: spyProc,
			TrojanPages: trojanCands, SpyPages: spyCands,
			TrojanLive: func() []enclave.VAddr { return liveEvictionSet },
			SpyLive:    func() []enclave.VAddr { return liveMonitor },
			TrojanHome: cfg.TrojanCore, SpyHome: cfg.SpyCore,
			StormCore: cfg.NoiseCore,
		})
	}

	// Step the engine until both endpoints finish; immortal noise actors
	// would otherwise keep an unbounded Run busy forever.
	for limit := t0; !(trojanDone && spyDone) && limit < hardCap; {
		limit += 20_000_000
		plat.Run(limit)
	}

	if injector != nil {
		res.Faults = injector.Log()
	}
	res.Report = ctl.report
	res.Report.Rounds = ctl.rounds
	res.Report.FinalWindow = ctl.window
	res.Report.FinalRepetition = ctl.rep
	res.BitsSent = ctl.bitsSent
	for _, g := range ctl.got {
		if g != nil {
			res.ChunksDelivered++
		}
	}
	if res.SessionCycles > 0 {
		seconds := float64(res.SessionCycles) / plat.CyclesPerSecond()
		res.GoodputKBps = float64(len(payload)) / 1000 / seconds
	}

	if trojanErr != nil {
		return res, trojanErr
	}
	if spyErr != nil {
		return res, spyErr
	}
	if !(trojanDone && spyDone) {
		return res, fmt.Errorf("core: resilient session stalled (ran to hard cap at %d cycles)", hardCap)
	}
	if res.ChunksDelivered != res.Chunks {
		return res, fmt.Errorf("core: resilient session ended with %d/%d chunks delivered", res.ChunksDelivered, res.Chunks)
	}
	assembled := make([]byte, 0, len(payload))
	for _, g := range ctl.got {
		assembled = append(assembled, g...)
	}
	res.Payload = assembled
	res.Delivered = true
	if !bytes.Equal(assembled, payload) {
		// Every chunk passed CRC yet the content differs — a 2^-16-per-chunk
		// event worth surfacing loudly rather than returning bad data.
		res.Delivered = false
		res.Payload = nil
		return res, fmt.Errorf("core: resilient transfer CRC collision")
	}
	return res, nil
}
