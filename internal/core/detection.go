package core

import (
	"fmt"

	"meecc/internal/detect"
	"meecc/internal/enclave"
	"meecc/internal/platform"
	"meecc/internal/sim"
)

// DetectionRow reports one workload's visibility to the HPC-based attack
// monitor (detect.Monitor).
type DetectionRow struct {
	Workload  string
	AlarmRate float64
	PeakShare float64
	// ChannelError is the covert channel's error rate while monitored
	// (n/a for the benign control).
	ChannelError float64
}

// detectionSampleEvery is the monitor's observation window.
const detectionSampleEvery = 100_000

// attachDetector spawns the monitor actor sampling the LLC over the
// transmission interval and returns the monitor for inspection.
func attachDetector(plat *platform.Platform, t0, tEnd sim.Cycles) *detect.Monitor {
	mon := detect.NewMonitor(detect.DefaultConfig(), plat.Caches().LLC())
	plat.Engine().SpawnAt("hpc-monitor", t0, func(p *sim.Proc) {
		for now := t0; now < tEnd; now += detectionSampleEvery {
			p.SleepUntil(now + detectionSampleEvery)
			mon.Sample()
		}
	})
	return mon
}

// DetectionStudy runs the CacheShield-style monitor against three
// workloads — the MEE covert channel, the LLC Prime+Probe covert channel,
// and a benign memory-intensive control — and reports alarm rates. The
// expected outcome is the paper's stealth claim operationalized: the LLC
// channel alarms on essentially every window, the MEE channel and the
// benign workload on none.
func DetectionStudy(opts Options, window sim.Cycles, nbits int) ([]DetectionRow, error) {
	bits := RandomBits(opts.Seed, nbits)
	var rows []DetectionRow

	// MEE covert channel under monitoring (retry setup failures under a
	// fresh seed, as an attacker would).
	{
		var mon *detect.Monitor
		var res *ChannelResult
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			seed := opts.Seed + uint64(attempt)*2654435761
			cfg := DefaultChannelConfig(seed)
			cfg.Options = opts
			cfg.Options.Seed = seed
			cfg.Window = window
			cfg.Bits = bits
			cfg.onPlatform = func(plat *platform.Platform, t0, tEnd sim.Cycles) {
				mon = attachDetector(plat, t0, tEnd)
			}
			res, err = RunChannel(cfg)
			if err == nil {
				break
			}
		}
		if err != nil {
			return nil, fmt.Errorf("core: detection study (mee): %w", err)
		}
		rows = append(rows, DetectionRow{
			Workload:     "mee-cache-channel",
			AlarmRate:    mon.AlarmRate(),
			PeakShare:    mon.PeakShare,
			ChannelError: res.ErrorRate,
		})
	}

	// LLC Prime+Probe channel under monitoring.
	{
		var mon *detect.Monitor
		cfg := DefaultChannelConfig(opts.Seed + 1)
		cfg.Options = opts
		cfg.Options.Seed = opts.Seed + 1
		cfg.Bits = bits
		cfg.onPlatform = func(plat *platform.Platform, t0, tEnd sim.Cycles) {
			mon = attachDetector(plat, t0, tEnd)
		}
		res, err := RunLLCChannel(cfg)
		if err != nil {
			return nil, fmt.Errorf("core: detection study (llc): %w", err)
		}
		rows = append(rows, DetectionRow{
			Workload:     "llc-prime-probe",
			AlarmRate:    mon.AlarmRate(),
			PeakShare:    mon.PeakShare,
			ChannelError: res.ErrorRate,
		})
	}

	// Benign control: a memory-hungry but honest workload.
	{
		plat := Options{Seed: opts.Seed + 2, SpikeProb: -1}.boot()
		pr := plat.NewProcess("benign")
		const pages = 4096 // 16 MB working set
		buf := pr.AllocGeneral(pages)
		span := sim.Cycles(nbits) * window
		plat.SpawnThread("benign", pr, 0, func(th *platform.Thread) {
			va := buf
			for th.Now() < span+200_000 {
				th.Access(va)
				va += 64
				if va >= buf+enclave.VAddr(pages*enclave.PageBytes) {
					va = buf
				}
			}
		})
		mon := attachDetector(plat, 0, span)
		plat.Run(span + 200_000)
		plat.Close()
		rows = append(rows, DetectionRow{
			Workload:  "benign-memory-stress",
			AlarmRate: mon.AlarmRate(),
			PeakShare: mon.PeakShare,
		})
	}
	return rows, nil
}
