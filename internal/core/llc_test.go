package core

import "testing"

func TestLLCChannelTransmits(t *testing.T) {
	cfg := DefaultChannelConfig(81)
	cfg.Window = 0 // take the LLC default (5000)
	cfg.Bits = RandomBits(81, 128)
	res, err := RunLLCChannel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorRate > 0.1 {
		t.Fatalf("LLC channel error %.3f", res.ErrorRate)
	}
	// 5000-cycle windows at 4 GHz = 100 KBps: LLC channels outrun the MEE
	// channel, as the paper concedes.
	if res.KBps < 90 {
		t.Fatalf("LLC channel rate %.1f KBps", res.KBps)
	}
}

func TestLLCChannelFootprintIsConcentrated(t *testing.T) {
	cfg := DefaultChannelConfig(82)
	cfg.Bits = RandomBits(82, 128)
	res, err := RunLLCChannel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fp := res.Footprint
	if fp.LLCEvictions == 0 {
		t.Fatal("no LLC evictions recorded")
	}
	// The P+P channel hammers one LLC set; a detector sees a white-hot set.
	if fp.LLCHottestShare < 0.5 {
		t.Fatalf("hottest LLC set share %.2f, expected concentration", fp.LLCHottestShare)
	}
	if fp.MEEReads != 0 {
		t.Fatalf("LLC channel touched the MEE %d times", fp.MEEReads)
	}
}

func TestStealthStudyContrast(t *testing.T) {
	rows, err := StealthStudy(DefaultOptions(83), 15000, 96)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	var mee, llc StealthRow
	for _, r := range rows {
		switch r.Attack {
		case "mee-cache-channel":
			mee = r
		case "llc-prime-probe":
			llc = r
		}
	}
	// The MEE channel's LLC evictions are scattered (its conflict set is
	// in the MEE cache, and its data lines map to distant LLC sets); the
	// LLC channel's are concentrated in one set.
	if mee.LLCHottestShare >= llc.LLCHottestShare {
		t.Fatalf("MEE channel LLC concentration %.2f not below P+P's %.2f",
			mee.LLCHottestShare, llc.LLCHottestShare)
	}
	if llc.LLCHottestShare < 0.5 {
		t.Fatalf("P+P concentration %.2f unexpectedly low", llc.LLCHottestShare)
	}
	if mee.LLCHottestShare > 0.2 {
		t.Fatalf("MEE channel concentration %.2f unexpectedly high", mee.LLCHottestShare)
	}
	// And only the MEE channel generates MEE traffic.
	if mee.MEEReadsPerBit == 0 || llc.MEEReadsPerBit != 0 {
		t.Fatalf("MEE reads per bit: mee=%.1f llc=%.1f", mee.MEEReadsPerBit, llc.MEEReadsPerBit)
	}
	t.Logf("stealth: mee hottest=%.3f llc hottest=%.3f; mee evictions/bit=%.1f llc=%.1f",
		mee.LLCHottestShare, llc.LLCHottestShare, mee.LLCEvictionsPerBit, llc.LLCEvictionsPerBit)
}
