// Package core implements the paper's contribution: the MEE-cache covert
// channel and the reverse-engineering procedures it is built on.
//
// The package is organized around the paper's sections:
//
//   - lab.go: experiment harness (platform boot options, in-enclave timing
//     primitives built on the hyperthread timer of Figure 2(c));
//   - algorithm1.go: eviction-address-set discovery (Algorithm 1, §4.2) and
//     the eviction-test primitive it is built on;
//   - reveng.go: MEE cache capacity measurement via candidate-address-set
//     eviction probability (§4.1, Figure 4) and the combined
//     reverse-engineering driver (capacity + associativity -> organization);
//   - latency.go: protected-region access-latency characterization by
//     integrity-tree hit level (§5.1, Figure 5);
//   - primeprobe.go: the Prime+Probe baseline and why it fails on the MEE
//     cache (§5.2, Figure 6a);
//   - channel.go: the MEE-cache covert channel protocol (Algorithm 2, §5.3,
//     Figure 6b) with trojan-side eviction-set construction and spy-side
//     monitor-address discovery;
//   - noise.go: the background-noise environments of §5.4 (Figure 8);
//   - sweep.go: the bit-rate/error-rate trade-off sweep (§5.4, Figure 7);
//   - mitigation.go: mitigation ablations extending §5.5.
//
// All experiments are deterministic for a fixed Options.Seed.
package core
