package core

import (
	"container/list"
	"fmt"
	"sync"
)

// WarmCache memoizes ChannelWarmState values by the parameters the warm
// phase depends on, so trials that share a seed and machine (the experiment
// harness's SharedAxes) pay the warm-up once. It is safe for concurrent use
// and preserves the harness's determinism contract: a warm-forked run is
// exactly equal to a fresh one (TestWarmForkMatchesFreshRun), so whether a
// trial hits or misses the cache is invisible in the results.
//
// Each entry pins a platform snapshot (roughly one warmed platform's
// memory), so the cache is bounded: beyond capacity the least recently used
// entry is dropped and would be rebuilt — deterministically — on a later
// miss. The harness dispatches shared-seed jobs back to back, so a small
// capacity captures all the reuse.
type WarmCache struct {
	mu  sync.Mutex
	cap int
	m   map[string]*warmEntry
	lru *list.List // front = most recently used; values are *warmEntry
}

type warmEntry struct {
	key  string
	elem *list.Element
	once sync.Once
	ws   *ChannelWarmState
	err  error
}

// NewWarmCache returns a cache holding at most capacity warm states
// (capacity <= 0 selects a default suited to the harness's worker pools).
func NewWarmCache(capacity int) *WarmCache {
	if capacity <= 0 {
		capacity = 16
	}
	return &WarmCache{cap: capacity, m: map[string]*warmEntry{}, lru: list.New()}
}

// warmKey identifies a warm phase: everything WarmChannel's product depends
// on and ChannelWarmState.Run checks compatibility against. Configs that
// differ only in transmit-side knobs (Bits, Window, ProbePhase, Repetition)
// share a key.
func warmKey(cfg ChannelConfig) string {
	o := cfg.Options
	return fmt.Sprintf("seed=%d epc=%d pol=%q rev=%g spike=%g/%g mee=%dx%d idx=%d twophase=%t cores=%d/%d budget=%d/%d/%d",
		o.Seed, o.EPCMode, o.MEEPolicy, o.RandomEvictProb, o.SpikeProb, o.SpikeMax,
		o.MEESets, o.MEEWays,
		cfg.Index512, cfg.TwoPhaseEviction, cfg.TrojanCore, cfg.SpyCore,
		cfg.CalBudget, cfg.SetupBudget, cfg.SearchBudget)
}

// Warm returns the cached warm state for cfg's warm parameters, running
// WarmChannel on first use. Concurrent callers with the same key share one
// warm-up; callers with different keys warm in parallel. Errors are cached
// too (a machine whose warm phase fails, fails the same way every time).
func (c *WarmCache) Warm(cfg ChannelConfig) (*ChannelWarmState, error) {
	cfg.applyDefaults()
	if err := warmRestriction(cfg); err != nil {
		return nil, err
	}
	key := warmKey(cfg)
	c.mu.Lock()
	e, ok := c.m[key]
	if ok {
		c.lru.MoveToFront(e.elem)
	} else {
		e = &warmEntry{key: key}
		e.elem = c.lru.PushFront(e)
		c.m[key] = e
		for c.lru.Len() > c.cap {
			oldest := c.lru.Back()
			evict := oldest.Value.(*warmEntry)
			c.lru.Remove(oldest)
			delete(c.m, evict.key)
		}
	}
	c.mu.Unlock()
	e.once.Do(func() { e.ws, e.err = WarmChannel(cfg) })
	return e.ws, e.err
}
