package core

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"meecc/internal/obs/ops"
	"meecc/internal/snapstore"
)

// WarmCache memoizes ChannelWarmState values by the parameters the warm
// phase depends on, so trials that share a seed and machine (the experiment
// harness's SharedAxes) pay the warm-up once. It is safe for concurrent use
// and preserves the harness's determinism contract: a warm-forked run is
// exactly equal to a fresh one (TestWarmForkMatchesFreshRun), so whether a
// trial hits or misses the cache is invisible in the results.
//
// Each entry pins a platform snapshot (roughly one warmed platform's
// memory), so the in-memory tier is bounded: beyond capacity the least
// recently used entry is dropped. With a snapstore attached (AttachStore)
// the cache grows a second, disk tier: evicted entries are spilled to the
// store as sealed warm-state blobs instead of discarded, and a later miss
// faults the state back in from disk — decode of a spilled state forks
// bit-identically to the in-memory original, so the tier swap is invisible
// too. The disk tier is itself capacity-bounded by the store's size bound.
type WarmCache struct {
	mu  sync.Mutex
	cap int
	m   map[string]*warmEntry
	lru *list.List // front = most recently used; values are *warmEntry
	// spilling indexes entries evicted from the LRU whose disk spill (or
	// computation) is still in flight. A miss that finds its key here adopts
	// the entry instead of recomputing: without it, a re-warm racing an
	// in-flight spill sees neither the memory tier (already evicted) nor the
	// disk tier (not yet written) and duplicates the whole warm phase.
	spilling map[string]*warmEntry

	store *snapstore.Store

	// testSpillDelay, when set, runs inside spill between eviction and the
	// store write — a test hook to hold a spill in flight deterministically.
	testSpillDelay func()

	computes   atomic.Int64
	diskLoads  atomic.Int64
	diskSpills atomic.Int64

	// Wall-clock latency of each slow path; nil-safe when SetOps was never
	// called. These time operational cost only — cache behavior stays
	// invisible in results either way.
	computeSeconds *ops.Histogram
	loadSeconds    *ops.Histogram
	spillSeconds   *ops.Histogram
}

// SetOps registers the cache's wall-clock metrics on reg (nil-safe): slow-path
// latencies plus gauges mirroring Stats.
func (c *WarmCache) SetOps(reg *ops.Registry) {
	c.computeSeconds = reg.Histogram("meecc_warm_compute_seconds", "Wall time of warm-phase computations.", nil)
	c.loadSeconds = reg.Histogram("meecc_warm_disk_load_seconds", "Wall time of warm-state disk faults.", nil)
	c.spillSeconds = reg.Histogram("meecc_warm_spill_seconds", "Wall time of warm-state disk spills.", nil)
	reg.GaugeFunc("meecc_warm_computes", "Warm phases executed.", func() float64 { return float64(c.computes.Load()) })
	reg.GaugeFunc("meecc_warm_disk_loads", "Warm misses served from the disk tier.", func() float64 { return float64(c.diskLoads.Load()) })
	reg.GaugeFunc("meecc_warm_disk_spills", "Warm evictions persisted to disk.", func() float64 { return float64(c.diskSpills.Load()) })
	reg.GaugeFunc("meecc_warm_entries", "Warm states resident in memory.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.lru.Len())
	})
}

type warmEntry struct {
	key  string
	elem *list.Element
	once sync.Once
	done atomic.Bool // set after once completes; guards ws/err for spillers
	ws   *ChannelWarmState
	err  error
}

// NewWarmCache returns a cache holding at most capacity warm states
// (capacity <= 0 selects a default suited to the harness's worker pools).
func NewWarmCache(capacity int) *WarmCache {
	if capacity <= 0 {
		capacity = 16
	}
	return &WarmCache{cap: capacity, m: map[string]*warmEntry{}, lru: list.New(), spilling: map[string]*warmEntry{}}
}

// AttachStore enables the disk tier backed by st. Call before handing the
// cache to workers; states spilled by earlier processes with compatible keys
// are faulted in transparently.
func (c *WarmCache) AttachStore(st *snapstore.Store) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.store = st
}

// WarmCacheStats counts the cache's slow paths: Computes is how many times a
// warm phase was actually executed, DiskLoads how many misses were served
// from the disk tier instead, DiskSpills how many evictions were persisted.
type WarmCacheStats struct {
	Computes   int64
	DiskLoads  int64
	DiskSpills int64
}

// Stats returns a snapshot of the cache's counters.
func (c *WarmCache) Stats() WarmCacheStats {
	return WarmCacheStats{
		Computes:   c.computes.Load(),
		DiskLoads:  c.diskLoads.Load(),
		DiskSpills: c.diskSpills.Load(),
	}
}

// warmKey identifies a warm phase: everything WarmChannel's product depends
// on and ChannelWarmState.Run checks compatibility against. Configs that
// differ only in transmit-side knobs (Bits, Window, ProbePhase, Repetition)
// share a key.
func warmKey(cfg ChannelConfig) string {
	o := cfg.Options
	return fmt.Sprintf("seed=%d epc=%d pol=%q rev=%g spike=%g/%g mee=%dx%d idx=%d twophase=%t cores=%d/%d budget=%d/%d/%d",
		o.Seed, o.EPCMode, o.MEEPolicy, o.RandomEvictProb, o.SpikeProb, o.SpikeMax,
		o.MEESets, o.MEEWays,
		cfg.Index512, cfg.TwoPhaseEviction, cfg.TrojanCore, cfg.SpyCore,
		cfg.CalBudget, cfg.SetupBudget, cfg.SearchBudget)
}

// diskKey maps a warm key to its content address in the store. The warm key
// already encodes the machine config, seed, and warm-up schedule, so equal
// addresses mean byte-identical warm phases.
func diskKey(warmKey string) string {
	return snapstore.Key("warm-channel", warmKey)
}

// Warm returns the cached warm state for cfg's warm parameters, faulting it
// in from the disk tier or running WarmChannel on first use. Concurrent
// callers with the same key share one warm-up; callers with different keys
// warm in parallel. Errors are cached too (a machine whose warm phase fails,
// fails the same way every time).
func (c *WarmCache) Warm(cfg ChannelConfig) (*ChannelWarmState, error) {
	cfg.applyDefaults()
	if err := warmRestriction(cfg); err != nil {
		return nil, err
	}
	key := warmKey(cfg)
	var evicted []*warmEntry
	c.mu.Lock()
	e, ok := c.m[key]
	if ok {
		c.lru.MoveToFront(e.elem)
	} else {
		// Adopt an entry whose spill is still in flight rather than
		// recomputing it; otherwise start fresh.
		if sp, inFlight := c.spilling[key]; inFlight {
			e = sp
		} else {
			e = &warmEntry{key: key}
		}
		e.elem = c.lru.PushFront(e)
		c.m[key] = e
		for c.lru.Len() > c.cap {
			oldest := c.lru.Back()
			evict := oldest.Value.(*warmEntry)
			c.lru.Remove(oldest)
			delete(c.m, evict.key)
			c.spilling[evict.key] = evict
			evicted = append(evicted, evict)
		}
	}
	store := c.store
	c.mu.Unlock()
	for _, ev := range evicted {
		c.spill(store, ev)
	}
	e.once.Do(func() {
		defer e.done.Store(true)
		if ws, ok := c.faultIn(store, key); ok {
			e.ws = ws
			return
		}
		c.computes.Add(1)
		start := time.Now()
		e.ws, e.err = WarmChannel(cfg)
		c.computeSeconds.ObserveSince(start)
	})
	return e.ws, e.err
}

// spill persists an evicted entry to the disk tier. Entries still computing,
// failed warm-ups, and encode or store errors are dropped silently — the
// state is rebuilt deterministically on a later miss, so spilling is purely
// an optimization.
func (c *WarmCache) spill(store *snapstore.Store, e *warmEntry) {
	defer func() {
		// The entry stays adoptable (see Warm) until the spill has landed in
		// the store — or been abandoned.
		c.mu.Lock()
		if c.spilling[e.key] == e {
			delete(c.spilling, e.key)
		}
		c.mu.Unlock()
	}()
	if c.testSpillDelay != nil {
		c.testSpillDelay()
	}
	if store == nil || !e.done.Load() || e.err != nil || e.ws == nil {
		return
	}
	start := time.Now()
	blob, err := e.ws.Encode()
	if err != nil {
		return
	}
	if store.Put(diskKey(e.key), blob) == nil {
		c.diskSpills.Add(1)
		c.spillSeconds.ObserveSince(start)
	}
}

// faultIn tries to serve a miss from the disk tier. Any failure — absent,
// evicted by the store's own size bound, or corrupt (the seal's checksum
// rejects damage) — falls back to recomputing.
func (c *WarmCache) faultIn(store *snapstore.Store, key string) (*ChannelWarmState, bool) {
	if store == nil {
		return nil, false
	}
	start := time.Now()
	blob, err := store.Get(diskKey(key))
	if err != nil {
		return nil, false
	}
	ws, err := DecodeWarmState(blob)
	if err != nil {
		return nil, false
	}
	c.diskLoads.Add(1)
	c.loadSeconds.ObserveSince(start)
	return ws, true
}
