// Package enclave models the SGX software abstractions the attack runs
// under: virtual address spaces with 4 KB page tables (SGX1 has no hugepage
// support inside enclaves — challenge 3 in Section 3 of the paper), the EPC
// (enclave page cache) frame allocator carving pages out of the protected
// data region, and per-enclave metadata.
package enclave

import (
	"fmt"
	"math/rand/v2"

	"meecc/internal/dram"
)

// VAddr is a virtual address within one process's address space.
type VAddr uint64

// PageBytes is the only page size available to enclaves (4 KB).
const PageBytes = 4096

// PageTable is a single-level map from virtual to physical 4 KB pages —
// sufficient detail for the simulation, which never walks page tables for
// timing (TLB effects are folded into the latency calibration). The version
// counter bumps on every Map (including remaps), so host-side translation
// caches can validate cached entries with a single compare instead of a map
// lookup; it is never part of simulated state.
type PageTable struct {
	pages   map[VAddr]dram.Addr
	version uint64
}

// NewPageTable returns an empty page table.
func NewPageTable() *PageTable {
	return &PageTable{pages: make(map[VAddr]dram.Addr), version: 1}
}

// Map installs a translation; both addresses must be page aligned.
func (pt *PageTable) Map(va VAddr, pa dram.Addr) {
	if va%PageBytes != 0 || pa%PageBytes != 0 {
		panic(fmt.Sprintf("enclave: unaligned mapping %#x -> %#x", va, pa))
	}
	pt.pages[va] = pa
	pt.version++
}

// Version returns the table's mutation counter. It starts at 1 (so callers
// can use 0 as an "invalid" sentinel) and increments on every Map.
func (pt *PageTable) Version() uint64 { return pt.version }

// Translate resolves a virtual address to its physical address.
func (pt *PageTable) Translate(va VAddr) (dram.Addr, bool) {
	base := va &^ (PageBytes - 1)
	pa, ok := pt.pages[base]
	if !ok {
		return 0, false
	}
	return pa + dram.Addr(va-base), true
}

// Mapped reports the number of mapped pages.
func (pt *PageTable) Mapped() int { return len(pt.pages) }

// Clone returns an independent deep copy of the page table.
func (pt *PageTable) Clone() *PageTable {
	n := &PageTable{pages: make(map[VAddr]dram.Addr, len(pt.pages)), version: pt.version}
	for va, pa := range pt.pages {
		n.pages[va] = pa
	}
	return n
}

// AllocMode selects how the EPC allocator hands out physical frames.
type AllocMode int

const (
	// AllocSequential hands out physically consecutive frames — the common
	// case on a freshly booted machine and the assumption under which the
	// paper's 4 KB-stride candidate sets index the MEE cache cleanly.
	AllocSequential AllocMode = iota
	// AllocShuffled hands out frames in a random permutation, modeling a
	// fragmented EPC; reverse engineering then needs the search in
	// Algorithm 1 to do real work.
	AllocShuffled
	// AllocChunked hands out runs of physically contiguous frames (random
	// run lengths of 8–64 pages) with random gaps between runs — the
	// typical state of a real EPC after some uptime, and the source of the
	// smooth eviction-probability curve in Figure 4 of the paper.
	AllocChunked
)

// EPCAllocator carves 4 KB frames out of the protected data region and
// remembers which enclave owns each frame (SGX hardware enforces this via
// the EPCM; we enforce it at access time).
type EPCAllocator struct {
	frames []dram.Addr
	next   int
	owner  map[dram.Addr]int // frame -> enclave ID
}

// NewEPCAllocator prepares all frames of the region [base, base+size).
func NewEPCAllocator(base dram.Addr, size uint64, mode AllocMode, rng *rand.Rand) *EPCAllocator {
	if base%PageBytes != 0 || size%PageBytes != 0 {
		panic("enclave: EPC region must be page aligned")
	}
	n := int(size / PageBytes)
	a := &EPCAllocator{
		frames: make([]dram.Addr, n),
		owner:  make(map[dram.Addr]int),
	}
	for i := range a.frames {
		a.frames[i] = base + dram.Addr(i*PageBytes)
	}
	switch mode {
	case AllocShuffled:
		rng.Shuffle(n, func(i, j int) {
			a.frames[i], a.frames[j] = a.frames[j], a.frames[i]
		})
	case AllocChunked:
		// Partition the frame list into runs of 8..64 contiguous frames,
		// then shuffle the runs. Within a run addresses stay sequential.
		var runs [][]dram.Addr
		for i := 0; i < n; {
			l := 8 + rng.IntN(57)
			if i+l > n {
				l = n - i
			}
			runs = append(runs, a.frames[i:i+l])
			i += l
		}
		rng.Shuffle(len(runs), func(i, j int) { runs[i], runs[j] = runs[j], runs[i] })
		out := make([]dram.Addr, 0, n)
		for _, r := range runs {
			out = append(out, r...)
		}
		a.frames = out
	}
	return a
}

// Clone returns an independent deep copy of the allocator (frame order,
// cursor, and ownership). Determinism note: the frame order was fixed at
// construction, so clones allocate the same frames in the same order as the
// original would have.
func (a *EPCAllocator) Clone() *EPCAllocator {
	n := &EPCAllocator{
		frames: make([]dram.Addr, len(a.frames)),
		next:   a.next,
		owner:  make(map[dram.Addr]int, len(a.owner)),
	}
	copy(n.frames, a.frames)
	for f, id := range a.owner {
		n.owner[f] = id
	}
	return n
}

// Alloc hands the next frame to enclave eid.
func (a *EPCAllocator) Alloc(eid int) (dram.Addr, error) {
	if a.next >= len(a.frames) {
		return 0, fmt.Errorf("enclave: EPC exhausted (%d frames)", len(a.frames))
	}
	f := a.frames[a.next]
	a.next++
	a.owner[f] = eid
	return f, nil
}

// Owner returns the enclave owning the frame containing pa, or -1.
func (a *EPCAllocator) Owner(pa dram.Addr) int {
	if id, ok := a.owner[pa&^(PageBytes-1)]; ok {
		return id
	}
	return -1
}

// Free returns how many frames remain.
func (a *EPCAllocator) Free() int { return len(a.frames) - a.next }

// Realloc models an EPC paging round trip for the page in frame old: the
// owning enclave keeps the page, but it comes back in a different physical
// frame. The old frame goes to the back of the free list (it is reused only
// after every never-used frame), keeping allocation deterministic.
func (a *EPCAllocator) Realloc(old dram.Addr) (dram.Addr, error) {
	old &^= PageBytes - 1
	eid, ok := a.owner[old]
	if !ok {
		return 0, fmt.Errorf("enclave: Realloc of unowned frame %#x", old)
	}
	fresh, err := a.Alloc(eid)
	if err != nil {
		return 0, err
	}
	delete(a.owner, old)
	a.frames = append(a.frames, old)
	return fresh, nil
}

// Enclave is the metadata for one enclave instance.
type Enclave struct {
	ID    int
	Base  VAddr // start of ELRANGE in the owning process
	Pages int   // number of EPC pages committed
}

// Size returns the enclave's committed byte size.
func (e *Enclave) Size() uint64 { return uint64(e.Pages) * PageBytes }

// Contains reports whether va lies inside the enclave's linear range.
func (e *Enclave) Contains(va VAddr) bool {
	return va >= e.Base && va < e.Base+VAddr(e.Size())
}

// Timing constants for the measurement mechanisms compared in Figure 2 of
// the paper (Section 3, challenge 4).
const (
	// OCallMinCycles..OCallMaxCycles bound the cost of leaving the enclave
	// to execute rdtsc via an OCALL.
	OCallMinCycles = 8000
	OCallMaxCycles = 15000
	// TimerReadCycles is the cost of reading the hyperthread timer value
	// from non-enclave memory from inside the enclave (Figure 2(c)).
	TimerReadCycles = 50
	// TimerResolutionCycles is the update period of the timer thread's
	// store loop, i.e. the quantization of the readings.
	TimerResolutionCycles = 35
)
