package enclave

import (
	"fmt"
	"sort"

	"meecc/internal/dram"
)

// PTE is one page-table entry in a serialized image.
type PTE struct {
	VA VAddr
	PA dram.Addr
}

// Entries returns the page table's translations sorted by virtual address,
// a deterministic flattening of the underlying map for serialization.
func (pt *PageTable) Entries() []PTE {
	out := make([]PTE, 0, len(pt.pages))
	for va, pa := range pt.pages {
		out = append(out, PTE{VA: va, PA: pa})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].VA < out[j].VA })
	return out
}

// PageTableFromEntries rebuilds a page table from serialized entries,
// validating alignment and rejecting duplicate virtual pages.
func PageTableFromEntries(entries []PTE) (*PageTable, error) {
	pt := NewPageTable()
	for _, e := range entries {
		if e.VA%PageBytes != 0 || e.PA%PageBytes != 0 {
			return nil, fmt.Errorf("enclave: unaligned mapping %#x -> %#x", e.VA, e.PA)
		}
		if _, dup := pt.pages[e.VA]; dup {
			return nil, fmt.Errorf("enclave: duplicate mapping for %#x", e.VA)
		}
		pt.pages[e.VA] = e.PA
	}
	return pt, nil
}

// OwnerEntry records one frame's owning enclave in a serialized image.
type OwnerEntry struct {
	Frame dram.Addr
	EID   int
}

// EPCState is the serializable image of an EPCAllocator. Frame order is the
// allocator's actual (possibly shuffled) hand-out order, so a rebuilt
// allocator allocates the same frames in the same sequence.
type EPCState struct {
	Frames []dram.Addr
	Next   int
	Owners []OwnerEntry // sorted by Frame
}

// ExportState flattens the allocator deterministically.
func (a *EPCAllocator) ExportState() *EPCState {
	st := &EPCState{
		Frames: make([]dram.Addr, len(a.frames)),
		Next:   a.next,
		Owners: make([]OwnerEntry, 0, len(a.owner)),
	}
	copy(st.Frames, a.frames)
	for f, id := range a.owner {
		st.Owners = append(st.Owners, OwnerEntry{Frame: f, EID: id})
	}
	sort.Slice(st.Owners, func(i, j int) bool { return st.Owners[i].Frame < st.Owners[j].Frame })
	return st
}

// EPCFromState rebuilds an allocator from a serialized image.
func EPCFromState(st *EPCState) (*EPCAllocator, error) {
	if st.Next < 0 || st.Next > len(st.Frames) {
		return nil, fmt.Errorf("enclave: EPC cursor %d out of range (%d frames)", st.Next, len(st.Frames))
	}
	a := &EPCAllocator{
		frames: make([]dram.Addr, len(st.Frames)),
		next:   st.Next,
		owner:  make(map[dram.Addr]int, len(st.Owners)),
	}
	copy(a.frames, st.Frames)
	for _, o := range st.Owners {
		if o.Frame%PageBytes != 0 {
			return nil, fmt.Errorf("enclave: unaligned owned frame %#x", o.Frame)
		}
		if _, dup := a.owner[o.Frame]; dup {
			return nil, fmt.Errorf("enclave: duplicate owner entry for %#x", o.Frame)
		}
		a.owner[o.Frame] = o.EID
	}
	return a, nil
}
