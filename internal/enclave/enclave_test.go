package enclave

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"meecc/internal/dram"
)

func TestPageTableMapTranslate(t *testing.T) {
	pt := NewPageTable()
	pt.Map(0x10000, 0x5000)
	cases := []struct {
		va   VAddr
		want dram.Addr
	}{
		{0x10000, 0x5000},
		{0x10001, 0x5001},
		{0x10FFF, 0x5FFF},
	}
	for _, c := range cases {
		pa, ok := pt.Translate(c.va)
		if !ok || pa != c.want {
			t.Errorf("Translate(%#x) = %#x,%v want %#x", c.va, pa, ok, c.want)
		}
	}
	if _, ok := pt.Translate(0x11000); ok {
		t.Error("adjacent unmapped page translated")
	}
	if pt.Mapped() != 1 {
		t.Errorf("mapped=%d", pt.Mapped())
	}
}

func TestPageTableRejectsUnaligned(t *testing.T) {
	pt := NewPageTable()
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned Map accepted")
		}
	}()
	pt.Map(0x10001, 0x5000)
}

func TestQuickPageTableOffsetPreserved(t *testing.T) {
	pt := NewPageTable()
	pt.Map(0, 0x40000)
	f := func(off uint16) bool {
		va := VAddr(off) % PageBytes
		pa, ok := pt.Translate(va)
		return ok && pa == 0x40000+dram.Addr(va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialAllocatorIsContiguous(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	a := NewEPCAllocator(0x1000000, 64*PageBytes, AllocSequential, rng)
	prev := dram.Addr(0)
	for i := 0; i < 64; i++ {
		f, err := a.Alloc(7)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && f != prev+PageBytes {
			t.Fatalf("frame %d not contiguous: %#x after %#x", i, f, prev)
		}
		prev = f
		if a.Owner(f) != 7 {
			t.Fatalf("owner of %#x = %d", f, a.Owner(f))
		}
	}
	if a.Free() != 0 {
		t.Fatalf("free=%d", a.Free())
	}
	if _, err := a.Alloc(7); err == nil {
		t.Fatal("exhausted allocator still allocates")
	}
}

func TestShuffledAllocatorPermutesAllFrames(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	const n = 256
	a := NewEPCAllocator(0, n*PageBytes, AllocShuffled, rng)
	seen := map[dram.Addr]bool{}
	sequentialRun := 0
	var prev dram.Addr
	for i := 0; i < n; i++ {
		f, err := a.Alloc(1)
		if err != nil {
			t.Fatal(err)
		}
		if f%PageBytes != 0 || uint64(f) >= n*PageBytes {
			t.Fatalf("frame %#x out of range", f)
		}
		if seen[f] {
			t.Fatalf("frame %#x handed out twice", f)
		}
		seen[f] = true
		if i > 0 && f == prev+PageBytes {
			sequentialRun++
		}
		prev = f
	}
	if len(seen) != n {
		t.Fatalf("only %d distinct frames", len(seen))
	}
	if sequentialRun > n/4 {
		t.Fatalf("shuffled allocator too sequential (%d adjacent pairs)", sequentialRun)
	}
}

func TestChunkedAllocatorHasRuns(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	const n = 512
	a := NewEPCAllocator(0, n*PageBytes, AllocChunked, rng)
	seen := map[dram.Addr]bool{}
	adjacent := 0
	var prev dram.Addr
	for i := 0; i < n; i++ {
		f, err := a.Alloc(1)
		if err != nil {
			t.Fatal(err)
		}
		if seen[f] {
			t.Fatalf("frame %#x handed out twice", f)
		}
		seen[f] = true
		if i > 0 && f == prev+PageBytes {
			adjacent++
		}
		prev = f
	}
	// Runs of 8..64 frames: most transitions stay adjacent, but not all.
	if adjacent < n/2 {
		t.Fatalf("chunked allocation barely contiguous (%d adjacent)", adjacent)
	}
	if adjacent == n-1 {
		t.Fatal("chunked allocation fully sequential (no fragmentation)")
	}
}

func TestOwnerOfUnallocatedFrame(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	a := NewEPCAllocator(0, 8*PageBytes, AllocSequential, rng)
	if got := a.Owner(0); got != -1 {
		t.Fatalf("owner of unallocated frame = %d", got)
	}
	f, _ := a.Alloc(3)
	// Any address within the frame maps to the owner.
	if got := a.Owner(f + 123); got != 3 {
		t.Fatalf("owner via offset = %d", got)
	}
}

func TestAllocatorRejectsUnaligned(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned EPC region accepted")
		}
	}()
	NewEPCAllocator(17, 8*PageBytes, AllocSequential, rand.New(rand.NewPCG(1, 1)))
}

func TestEnclaveContains(t *testing.T) {
	e := &Enclave{ID: 1, Base: 0x8000_0000, Pages: 4}
	if e.Size() != 4*PageBytes {
		t.Fatalf("size %d", e.Size())
	}
	if !e.Contains(0x8000_0000) || !e.Contains(0x8000_0000+VAddr(e.Size())-1) {
		t.Fatal("enclave does not contain its range")
	}
	if e.Contains(0x8000_0000-1) || e.Contains(0x8000_0000+VAddr(e.Size())) {
		t.Fatal("enclave contains addresses outside its range")
	}
}
