// Benchmarks that regenerate every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index). Each benchmark runs the
// corresponding experiment end to end and reports the figure's headline
// quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// doubles as a full reproduction pass.
package meecc

import (
	"runtime"
	"testing"

	"meecc/internal/exp"
)

// mustRunChannel runs the channel, retrying setup failures under fresh
// seeds so growing b.N cannot die on one unlucky seed.
func mustRunChannel(b *testing.B, cfg ChannelConfig) *ChannelResult {
	b.Helper()
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		c := cfg
		c.Options.Seed = cfg.Options.Seed + uint64(attempt)*1_000_003
		res, err := RunChannel(c)
		if err == nil {
			return res
		}
		lastErr = err
	}
	b.Fatal(lastErr)
	return nil
}

// BenchmarkFig4EvictionProbability regenerates §4.1 (Figure 4): eviction
// probability vs candidate-address-set size, inferring the 64 KB capacity.
func BenchmarkFig4EvictionProbability(b *testing.B) {
	var capacityKB float64
	for i := 0; i < b.N; i++ {
		res, err := MeasureCapacity(DefaultOptions(uint64(i)), nil, 25)
		if err != nil {
			b.Fatal(err)
		}
		capacityKB = float64(res.CapacityBytes) / 1024
	}
	b.ReportMetric(capacityKB, "capacityKB")
}

// BenchmarkAlg1FindEvictionSet regenerates §4.2 (Algorithm 1): full
// organization recovery, reporting the discovered associativity.
func BenchmarkAlg1FindEvictionSet(b *testing.B) {
	var ways float64
	for i := 0; i < b.N; i++ {
		org, _, _, err := ReverseEngineer(DefaultOptions(uint64(13+i)), 10)
		if err != nil {
			b.Fatal(err)
		}
		ways = float64(org.Ways)
	}
	b.ReportMetric(ways, "ways")
}

// BenchmarkFig5LatencyHistogram regenerates §5.1 (Figure 5): the latency
// distribution by integrity-tree hit level; reports the versions-hit mean
// (paper: ~480 cycles) and the per-level spacing (paper: ~270).
func BenchmarkFig5LatencyHistogram(b *testing.B) {
	var vh, gap float64
	for i := 0; i < b.N; i++ {
		res, err := CharacterizeLatency(DefaultOptions(uint64(14+i)), 400)
		if err != nil {
			b.Fatal(err)
		}
		vh = res.MeanLatency(0)
		gap = res.MeanLatency(1) - vh
	}
	b.ReportMetric(vh, "versionsHitCyc")
	b.ReportMetric(gap, "levelGapCyc")
}

// BenchmarkFig6aPrimeProbe regenerates §5.2 (Figure 6a): the Prime+Probe
// baseline; reports its error rate and minimum probe time (paper: probes
// exceed 3500 cycles, communication not established).
func BenchmarkFig6aPrimeProbe(b *testing.B) {
	var errRate, minProbe float64
	for i := 0; i < b.N; i++ {
		cfg := DefaultChannelConfig(uint64(5 + i))
		cfg.Bits = AlternatingBits(64)
		res, err := RunPrimeProbe(cfg)
		if err != nil {
			b.Fatal(err)
		}
		errRate = res.ErrorRate
		minProbe = float64(res.ProbeTimes[0])
		for _, p := range res.ProbeTimes {
			if float64(p) < minProbe {
				minProbe = float64(p)
			}
		}
	}
	b.ReportMetric(errRate, "err/bit")
	b.ReportMetric(minProbe, "minProbeCyc")
}

// BenchmarkFig6bCovertChannel regenerates §5.3 (Figure 6b): this work's
// channel sending '0101...'; reports error rate and bit rate.
func BenchmarkFig6bCovertChannel(b *testing.B) {
	var errRate, kbps float64
	for i := 0; i < b.N; i++ {
		cfg := DefaultChannelConfig(uint64(42 + i))
		cfg.Bits = AlternatingBits(30)
		res := mustRunChannel(b, cfg)
		errRate, kbps = res.ErrorRate, res.KBps
	}
	b.ReportMetric(errRate, "err/bit")
	b.ReportMetric(kbps, "KBps")
}

// BenchmarkFig7WindowSweep regenerates §5.4 (Figure 7): the bit-rate vs
// error-rate trade-off across the seven window sizes; reports the paper's
// headline operating point (15000 cycles).
func BenchmarkFig7WindowSweep(b *testing.B) {
	var kbps15, err15, err7500 float64
	for i := 0; i < b.N; i++ {
		pts := WindowSweep(DefaultOptions(uint64(1+i)), nil, 256)
		for _, p := range pts {
			if p.Err != nil {
				continue // rare per-seed setup failure; keep prior metric
			}
			switch p.Window {
			case 15000:
				kbps15, err15 = p.KBps, p.ErrorRate
			case 7500:
				err7500 = p.ErrorRate
			}
		}
	}
	b.ReportMetric(kbps15, "KBps@15k")
	b.ReportMetric(err15, "err@15k")
	b.ReportMetric(err7500, "err@7.5k")
}

// BenchmarkFig8Noise regenerates §5.4 (Figure 8): the 128-bit '100100...'
// sequence under the four noise environments; reports quiet and MEE-noise
// error bits (paper: 1 and 4–5).
func BenchmarkFig8Noise(b *testing.B) {
	var quiet, meeNoise float64
	for i := 0; i < b.N; i++ {
		runs := NoiseStudy(DefaultOptions(uint64(3+i)), 15000, 128)
		for _, r := range runs {
			if r.Err != nil {
				continue // rare per-seed setup failure; keep prior metric
			}
			switch r.Kind {
			case NoiseNone:
				quiet = float64(r.Result.BitErrors)
			case NoiseMEE4K:
				meeNoise = float64(r.Result.BitErrors)
			}
		}
	}
	b.ReportMetric(quiet, "errBitsQuiet")
	b.ReportMetric(meeNoise, "errBitsMEE4K")
}

// BenchmarkMitigations runs the §5.5-extension ablation; reports how many
// of the hardened variants defeat the channel.
func BenchmarkMitigations(b *testing.B) {
	var defeated float64
	for i := 0; i < b.N; i++ {
		defeated = 0
		for _, m := range MitigationStudy(DefaultOptions(uint64(9+i)), 15000, 128) {
			if m.Name != "baseline" && m.Defeated() {
				defeated++
			}
		}
	}
	b.ReportMetric(defeated, "defeatedVariants")
}

// BenchmarkEvictionPhases runs the §5.3 design-choice ablation: eviction
// success of single-pass vs two-phase passes under LRU.
func BenchmarkEvictionPhases(b *testing.B) {
	var one, two float64
	for i := 0; i < b.N; i++ {
		r1, err := EvictionStudy(DefaultOptions(uint64(41+i)), "lru", false, 40)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := EvictionStudy(DefaultOptions(uint64(41+i)), "lru", true, 40)
		if err != nil {
			b.Fatal(err)
		}
		one, two = r1.SuccessRate(), r2.SuccessRate()
	}
	b.ReportMetric(one, "fwdOnlySuccess")
	b.ReportMetric(two, "fwdBwdSuccess")
}

// BenchmarkLLCPrimeProbeChannel runs the classic LLC covert channel — the
// baseline attack family (refs [7],[9]) the paper positions against.
func BenchmarkLLCPrimeProbeChannel(b *testing.B) {
	var kbps, errRate float64
	for i := 0; i < b.N; i++ {
		cfg := DefaultChannelConfig(uint64(81 + i))
		cfg.Window = 0 // LLC default: 5000 cycles
		cfg.Bits = RandomBits(uint64(81+i), 256)
		res, err := RunLLCChannel(cfg)
		if err != nil {
			b.Fatal(err)
		}
		kbps, errRate = res.KBps, res.ErrorRate
	}
	b.ReportMetric(kbps, "KBps")
	b.ReportMetric(errRate, "err/bit")
}

// BenchmarkParallelLanes runs the two-lane extension (beyond the paper).
func BenchmarkParallelLanes(b *testing.B) {
	var kbps, errRate float64
	for i := 0; i < b.N; i++ {
		cfg := DefaultChannelConfig(uint64(72 + i))
		cfg.Bits = RandomBits(uint64(72+i), 128)
		res, err := RunParallelChannel(cfg, 2)
		if err != nil {
			b.Fatal(err)
		}
		kbps, errRate = res.KBps, res.ErrorRate
	}
	b.ReportMetric(kbps, "KBps")
	b.ReportMetric(errRate, "err/bit")
}

// BenchmarkReliableTransfer runs the FEC-framed transfer extension.
func BenchmarkReliableTransfer(b *testing.B) {
	var goodput float64
	for i := 0; i < b.N; i++ {
		cfg := DefaultChannelConfig(uint64(404 + i))
		res, err := RunReliable(cfg, []byte("32-byte-session-key-0123456789ab"))
		if err != nil {
			b.Fatal(err)
		}
		goodput = res.GoodputKBps
	}
	b.ReportMetric(goodput, "goodputKBps")
}

// BenchmarkStealthStudy contrasts detector-visible footprints.
func BenchmarkStealthStudy(b *testing.B) {
	var meeShare, llcShare float64
	for i := 0; i < b.N; i++ {
		rows, err := StealthStudy(DefaultOptions(uint64(83+i)), 15000, 96)
		if err != nil {
			b.Fatal(err)
		}
		meeShare, llcShare = rows[0].LLCHottestShare, rows[1].LLCHottestShare
	}
	b.ReportMetric(meeShare, "meeHotShare")
	b.ReportMetric(llcShare, "llcHotShare")
}

// BenchmarkTimingStudy reproduces the §3 time-source comparison.
func BenchmarkTimingStudy(b *testing.B) {
	var ocall, ht float64
	for i := 0; i < b.N; i++ {
		rows, err := TimingStudy(DefaultOptions(uint64(23+i)), 40)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Mechanism {
			case "ocall-rdtsc":
				ocall = r.MeanOverhead
			case "hyperthread-timer":
				ht = r.MeanOverhead
			}
		}
	}
	b.ReportMetric(ocall, "ocallCyc")
	b.ReportMetric(ht, "htTimerCyc")
}

// BenchmarkMemoryOverhead reproduces the SGX slowdown curve.
func BenchmarkMemoryOverhead(b *testing.B) {
	var small, large float64
	for i := 0; i < b.N; i++ {
		rows, err := MeasureOverhead(DefaultOptions(uint64(29+i)), nil, 400)
		if err != nil {
			b.Fatal(err)
		}
		small, large = rows[0].Slowdown(), rows[len(rows)-1].Slowdown()
	}
	b.ReportMetric(small, "slowdown32KB")
	b.ReportMetric(large, "slowdown16MB")
}

// BenchmarkActivityInference runs the side-channel-direction extension.
func BenchmarkActivityInference(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		res, err := InferActivity(DefaultOptions(uint64(37+i)), 24, 150_000)
		if err != nil {
			b.Fatal(err)
		}
		acc = res.Accuracy
	}
	b.ReportMetric(acc, "accuracy")
}

// BenchmarkInBandSync runs the self-synchronizing channel extension.
func BenchmarkInBandSync(b *testing.B) {
	var kbps, errRate float64
	for i := 0; i < b.N; i++ {
		cfg := DefaultChannelConfig(uint64(61 + i))
		cfg.Bits = RandomBits(uint64(61+i), 64)
		res, err := RunInBandChannel(cfg)
		if err != nil {
			b.Fatal(err)
		}
		kbps, errRate = res.KBps, res.ErrorRate
	}
	b.ReportMetric(kbps, "effKBps")
	b.ReportMetric(errRate, "err/bit")
}

// BenchmarkDetectionStudy runs the HPC attack-monitor comparison.
func BenchmarkDetectionStudy(b *testing.B) {
	var llcAlarm, meeAlarm float64
	for i := 0; i < b.N; i++ {
		rows, err := DetectionStudy(DefaultOptions(uint64(91+i)), 15000, 96)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Workload {
			case "llc-prime-probe":
				llcAlarm = r.AlarmRate
			case "mee-cache-channel":
				meeAlarm = r.AlarmRate
			}
		}
	}
	b.ReportMetric(llcAlarm, "llcAlarmRate")
	b.ReportMetric(meeAlarm, "meeAlarmRate")
}

// BenchmarkExpHarness runs a two-cell, multi-trial window grid through the
// internal/exp worker pool — the path cmd/figures and `meecc batch` use —
// and reports the aggregated headline stats plus the pool's throughput.
// On a multi-core machine the harness parallelizes across GOMAXPROCS
// workers while keeping results byte-identical to a serial run.
func BenchmarkExpHarness(b *testing.B) {
	spec := &exp.Spec{
		Name:     "bench",
		Study:    "channel",
		BaseSeed: 42,
		Trials:   4,
		Params:   map[string]string{"bits": "64", "pattern": "random"},
		Axes:     []exp.Axis{{Name: "window", Values: []string{"10000", "15000"}}},
	}
	var kbps, ci float64
	for i := 0; i < b.N; i++ {
		rep, err := exp.RunSpec(spec, exp.Config{})
		if err != nil {
			b.Fatal(err)
		}
		c := rep.Cell("window=15000")
		kbps = c.Stat("kbps").Mean
		ci = c.Stat("error_rate").CI95
	}
	b.ReportMetric(kbps, "KBps@15k")
	b.ReportMetric(ci, "errCI95@15k")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
}

// BenchmarkHeadlineChannel is the paper's abstract claim: ~35 KBps at 1.7%
// error without error handling, measured over a long random payload.
func BenchmarkHeadlineChannel(b *testing.B) {
	var kbps, errRate float64
	for i := 0; i < b.N; i++ {
		cfg := DefaultChannelConfig(uint64(1001 + i))
		cfg.Bits = RandomBits(uint64(77+i), 512)
		res := mustRunChannel(b, cfg)
		kbps, errRate = res.KBps, res.ErrorRate
	}
	b.ReportMetric(kbps, "KBps")
	b.ReportMetric(errRate, "err/bit")
}
